package core

import (
	"repro/internal/threads"
)

// barrierObj is the processor object behind Barrier: a counter plus a
// condition variable, living on one node. Arriving threads (spawned by
// threaded RMIs) block on the condition until the last participant arrives —
// global synchronization expressed purely through RMI, the way a CC++
// program has to build it (the language has no built-in barrier, unlike
// Split-C).
type barrierObj struct {
	mu    threads.Mutex
	cond  threads.Cond
	n     int
	count int
	gen   int64
}

// barrierClassName is the registered class of barrier objects.
const barrierClassName = "__barrier"

func barrierClass() *Class {
	return &Class{
		Name: barrierClassName,
		New:  func() any { b := &barrierObj{}; b.cond.M = &b.mu; return b },
		Methods: []*Method{
			{
				Name:    "init",
				NewArgs: func() []Arg { return []Arg{&I64{}} },
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					self.(*barrierObj).n = int(args[0].(*I64).V)
				},
			},
			{
				// arrive blocks (on a fresh thread at the barrier's node)
				// until all participants have arrived; its RMI reply is the
				// release message.
				Name:     "arrive",
				Threaded: true,
				Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
					b := self.(*barrierObj)
					b.mu.Lock(t)
					gen := b.gen
					b.count++
					if b.count == b.n {
						b.count = 0
						b.gen++
						b.cond.Broadcast(t)
					} else {
						for b.gen == gen {
							b.cond.Wait(t)
						}
					}
					b.mu.Unlock(t)
				},
			},
		},
	}
}

// Barrier is a global synchronization object for CC++ programs, built
// entirely from RMIs to a processor object.
type Barrier struct {
	rt *Runtime
	gp GPtr
}

// NewBarrier creates (at setup time) a barrier object on the given node for
// n participants. The barrier class is registered on first use.
func (rt *Runtime) NewBarrier(node, n int) *Barrier {
	if _, ok := rt.classes[barrierClassName]; !ok {
		rt.RegisterClass(barrierClass())
	}
	gp := rt.CreateObject(node, barrierClassName)
	rt.Object(gp).(*barrierObj).n = n
	return &Barrier{rt: rt, gp: gp}
}

// Arrive enters the barrier and returns when all participants have arrived.
func (b *Barrier) Arrive(t *threads.Thread) {
	b.rt.Call(t, b.gp, "arrive", nil, nil)
}

// WaitLocal polls the network until cond (a predicate over node-local state,
// typically a counter updated by incoming one-way RMIs) holds. It is the
// CC++ analogue of Split-C's store-sync wait: the calling thread services
// messages while it waits.
func (rt *Runtime) WaitLocal(t *threads.Thread, cond func() bool) {
	n := rt.nodeOf(t)
	t.ChargeSyncOp()
	rt.pollUntil(t, n.node.ID, cond)
}
