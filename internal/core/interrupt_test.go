package core

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/threads"
)

// nullRMITime measures the warm null RMI under the given machine config and
// runtime options.
func nullRMITime(t *testing.T, cfg machine.Config, opts Options) time.Duration {
	t.Helper()
	rt := NewRuntimeOpts(machine.New(cfg, 2), opts)
	rt.RegisterClass(counterClass())
	gp := rt.CreateObject(1, "Counter")
	var warm time.Duration
	rt.OnNode(0, func(th *threads.Thread) {
		rt.Call(th, gp, "nop", nil, nil)
		start := th.Now()
		rt.Call(th, gp, "nop", nil, nil)
		warm = time.Duration(th.Now() - start)
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	return warm
}

func TestInterruptModelCorrectAndSlowerAt1997Cost(t *testing.T) {
	// Interrupt-driven reception must be semantically identical, and at the
	// 1997 software-interrupt cost it must lose to polling — the paper's §4
	// rationale for the polling thread.
	polling := nullRMITime(t, machine.SP1997(), Options{})
	interrupt := nullRMITime(t, machine.SP1997(), Options{InterruptDriven: true})
	if interrupt <= polling {
		t.Fatalf("interrupts at 60µs (%v) not slower than polling (%v)", interrupt, polling)
	}
	// Two messages per round trip: roughly +2×InterruptCost.
	if delta := interrupt - polling; delta < 100*time.Microsecond {
		t.Fatalf("interrupt surcharge %v, want >= 100µs for two messages", delta)
	}
}

func TestInterruptModelCompetitiveWhenCheap(t *testing.T) {
	// The paper's projection: cheap interrupts make the model viable.
	cheap := machine.SP1997()
	cheap.InterruptCost = 1 * time.Microsecond
	polling := nullRMITime(t, machine.SP1997(), Options{})
	interrupt := nullRMITime(t, cheap, Options{InterruptDriven: true})
	if interrupt > polling+5*time.Microsecond {
		t.Fatalf("cheap interrupts (%v) not competitive with polling (%v)", interrupt, polling)
	}
}

func TestInterruptModelDataIntegrity(t *testing.T) {
	rt := NewRuntimeOpts(machine.New(machine.SP1997(), 2), Options{InterruptDriven: true})
	rt.RegisterClass(counterClass())
	gp := rt.CreateObject(1, "Counter")
	var got int64
	rt.OnNode(0, func(th *threads.Thread) {
		for i := 0; i < 7; i++ {
			rt.Call(th, gp, "add", []Arg{&I64{V: int64(i)}}, nil)
		}
		var ret I64
		rt.Call(th, gp, "get", nil, &ret)
		got = ret.V
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("counter = %d, want 21", got)
	}
}
