package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/tham"
	"repro/internal/threads"
	"repro/internal/wire"
)

// callMode selects how the initiator of an RMI waits for completion.
type callMode int

const (
	// modeSpin: the calling thread itself polls the network until the reply
	// lands — the paper's "0-Word Simple" fast path with no thread switches.
	modeSpin callMode = iota
	// modeBlock: the caller blocks on a sync variable and the polling
	// thread completes it — the paper's standard sender path.
	modeBlock
	// modeFuture: the call returns immediately; Future.Wait joins later.
	modeFuture
	// modeOneWay: fire-and-forget, no reply message at all.
	modeOneWay
)

// invocation flag bits (wire word A[0]).
const (
	flagCold      = 1 << 0
	flagWantReply = 1 << 1
)

// completion is the sender-side landing pad for an RMI's reply.
type completion struct {
	mode callMode
	done bool
	sv   threads.SyncVar
}

// rmiMsg is the sender-side record of one in-flight RMI: the completion
// state and return destination. It never travels — the invocation message
// carries a request ID (a slot in the sender node's pending table, packed
// into the word arguments) and the reply echoes it, exactly the request-ID
// table real hardware uses. Everything the receiver needs resolves from the
// wire words on the destination side: the object from its object table, the
// method from its stub registry, the persistent R-buffer from its buffer
// table.
type rmiMsg struct {
	comp *completion
	ret  Arg
	// t0 is the send instant on the backend clock, set only when the node
	// has a wall-clock metrics registry (live backends); the reply handler
	// turns it into an RMI round-trip latency observation. Zero means "not
	// timed" (simulator, or one-way call).
	t0 time.Duration
}

// addPending stores an in-flight call record and returns its wire request
// ID (slot + 1, so 0 means "no reply expected"). Called from the sender
// node's execution context only, like takePending — the reply handler runs
// on the same node — so the table needs no lock.
//
//mpmd:hotpath
func (n *nodeRT) addPending(msg *rmiMsg) uint64 {
	if ln := len(n.freeIDs); ln > 0 {
		id := n.freeIDs[ln-1]
		n.freeIDs = n.freeIDs[:ln-1]
		n.pending[id] = msg
		return uint64(id) + 1
	}
	n.pending = append(n.pending, msg)
	return uint64(len(n.pending))
}

// takePending resolves a reply's request ID and frees the slot.
//
//mpmd:hotpath
func (n *nodeRT) takePending(wireID uint64) *rmiMsg {
	id := uint32(wireID - 1)
	msg := n.pending[id]
	if msg == nil {
		panic(fmt.Sprintf("core: node %d reply for unknown request %d", n.node.ID, wireID))
	}
	n.pending[id] = nil
	n.freeIDs = append(n.freeIDs, id)
	return msg
}

// callRec is a pooled sender-side call record: the envelope plus completion
// of one synchronous RMI, recycled once the caller has observed completion —
// the warm path's stand-in for the per-call-site records a CC++ stub would
// keep next to the stub cache. Only synchronous modes (spin/block) pool:
// futures hand their completion to the application, and one-way envelopes
// are last touched by the receiver.
type callRec struct {
	msg  rmiMsg
	comp completion
}

var callRecPool = sync.Pool{New: func() any { return new(callRec) }}

// release returns a consumed record to the pool. The completion's sync
// variable keeps its waiter backing array, so a recycled record's blocking
// read stops allocating.
func (r *callRec) release() {
	r.msg = rmiMsg{}
	r.comp.done = false
	r.comp.sv.Reset()
	callRecPool.Put(r)
}

// Future is the join handle of an asynchronous RMI.
type Future struct {
	rt   *Runtime
	comp *completion
}

// Wait blocks until the RMI's reply has landed.
func (f *Future) Wait(t *threads.Thread) {
	if f.comp.mode != modeFuture {
		panic("core: Wait on non-future completion")
	}
	f.comp.sv.Read(t)
}

// Done reports (without blocking) whether the reply has landed.
func (f *Future) Done() bool { return f.comp.done }

// Call performs a synchronous RMI: marshal args, transfer, run the method
// remotely, and wait for its completion (and return value, when the method
// declares one; pass the matching ret instance or nil). The sender blocks on
// a sync variable and the polling thread drives completion, unless the
// runtime was configured with SpinSenders.
func (rt *Runtime) Call(t *threads.Thread, gp GPtr, method string, args []Arg, ret Arg) {
	mode := modeBlock
	if rt.opts.SpinSenders {
		mode = modeSpin
	}
	rt.invoke(t, gp, method, args, ret, mode)
}

// CallSimple performs a synchronous RMI in which the calling thread itself
// polls for the reply: no thread switches at the sender (the paper's
// "0-Word Simple" variant).
func (rt *Runtime) CallSimple(t *threads.Thread, gp GPtr, method string, args []Arg, ret Arg) {
	rt.invoke(t, gp, method, args, ret, modeSpin)
}

// CallAsync starts an RMI and returns a Future to join on. ret, if non-nil,
// is filled in by the time Wait returns.
func (rt *Runtime) CallAsync(t *threads.Thread, gp GPtr, method string, args []Arg, ret Arg) *Future {
	comp := rt.invoke(t, gp, method, args, ret, modeFuture)
	return &Future{rt: rt, comp: comp}
}

// CallOneWay starts an RMI with no completion reply at all (the CC++
// analogue of a one-way store). The method must not declare a return value.
func (rt *Runtime) CallOneWay(t *threads.Thread, gp GPtr, method string, args []Arg) {
	rt.invoke(t, gp, method, args, nil, modeOneWay)
}

// invoke is the common sender path.
//
//mpmd:hotpath
func (rt *Runtime) invoke(t *threads.Thread, gp GPtr, method string, args []Arg, ret Arg, mode callMode) *completion {
	if gp.Nil() {
		panic("core: RMI through nil global pointer")
	}
	n := rt.nodeOf(t)
	cfg := t.Cfg()
	bm := rt.lookupMethod(gp, method)
	if bm.m.NewRet == nil && ret != nil {
		panic("core: method " + bm.qname + " has no return value")
	}
	if bm.m.NewRet != nil && ret == nil && mode != modeOneWay {
		ret = bm.m.NewRet()
	}
	if mode == modeOneWay && bm.m.NewRet != nil {
		panic("core: one-way RMI to method with return value: " + bm.qname)
	}
	n.node.Acct.Count(machine.CntRMI, 1)

	// Runtime bookkeeping under the runtime lock.
	lockPair(t, &n.rtLock)

	// Local invocations short-circuit the network but still pay the
	// global-pointer locality check and dispatch.
	if int(gp.node) == n.node.ID {
		n.node.Acct.Count(machine.CntLocalDeref, 1)
		t.Charge(machine.CatRuntime, cfg.LocalGPDeref+cfg.StubLookup)
		return rt.dispatchLocal(t, n, bm, gp, args, ret, mode)
	}

	// Method-stub cache lookup (§4: indexed by processor number and method
	// name hash).
	t.Charge(machine.CatRuntime, cfg.StubLookup)
	var entry *tham.CacheEntry
	cold := true
	if !rt.opts.DisableStubCache {
		if e, ok := n.cache.Lookup(int(gp.node), bm.hash); ok {
			entry = e
			cold = false
		}
	}
	if cold {
		n.node.Acct.Count(machine.CntStubMiss, 1)
		n.node.Acct.Count(machine.CntRMICold, 1)
	} else {
		n.node.Acct.Count(machine.CntStubHit, 1)
	}

	// Marshal arguments into the S-buffer: a pooled wire buffer whose
	// ownership passes to the message layer (no staging copy, no per-call
	// allocation on the warm path). The cold path reserves room for the
	// qualified method name behind the arguments; the modelled marshalling
	// charge covers the argument bytes only, exactly as before.
	extra := 0
	if cold {
		extra = len(bm.qname)
	}
	buf, argLen, units := marshalArgs(args, extra)
	t.Charge(machine.CatRuntime,
		time.Duration(units)*cfg.MarshalPerArg+
			time.Duration(argLen)*cfg.MemCopyPerByte)
	lockPair(t, &n.bufLock) // S-buffer pool

	// Synchronous calls draw their envelope+completion from the record
	// pool; futures and one-ways allocate, since their lifetime escapes
	// this call.
	var rec *callRec
	var comp *completion
	var msg *rmiMsg
	if mode == modeSpin || mode == modeBlock {
		rec = callRecPool.Get().(*callRec)
		comp, msg = &rec.comp, &rec.msg
		comp.mode = mode
	} else {
		comp = &completion{mode: mode} //mpmdvet:ignore hotpath future/one-way completions outlive the call — documented cold branch
		msg = &rmiMsg{}                //mpmdvet:ignore hotpath future/one-way envelopes outlive the call — documented cold branch
	}
	msg.comp, msg.ret = comp, ret
	var flags uint64
	var reqID uint64
	if mode != modeOneWay {
		flags |= flagWantReply
		// The reply finds this call through the sender's pending table; only
		// the slot's wire ID travels, packed into the flags word's high half.
		reqID = n.addPending(msg)
		if n.node.Met != nil {
			msg.t0 = n.node.M.Now()
		}
	}
	a := [4]uint64{0, uint64(gp.obj), 0, 0}
	if cold {
		// The whole method name travels and resolution happens remotely.
		flags |= flagCold
		a[2] = uint64(bm.hash)
		a[3] = uint64(len(bm.qname))
		copy(buf.Bytes()[argLen:], bm.qname)
	} else {
		a[2] = uint64(bm.stub)
		// The persistent R-buffer's ID at the destination (+1 so 0 means
		// none): the receiver resolves it in its own buffer table, the wire
		// form of the sender-managed buffer address of §4.
		a[3] = uint64(entry.RBufID) + 1
	}
	a[0] = flags | reqID<<32

	// Hand to the (thread-safe) message layer. Zero-argument warm
	// invocations fit a short AM; anything carrying marshalled data uses
	// the bulk path — this is why the paper's 1-Word RMI jumps to the
	// 70 µs bulk AM cost.
	lockPair(t, &n.commLock)
	rt.tr.SendBuf(t, n.node.ID, int(gp.node), rt.hInvoke, a, buf, false)

	switch mode {
	case modeSpin:
		rt.pollUntilDone(t, n.node.ID, comp)
	case modeBlock:
		comp.sv.Read(t)
	}
	if rec != nil {
		// Completion observed: the reply handler has run to completion on
		// this node's CPU, so nothing references the record any more. The
		// synchronous callers discard the return value.
		rec.release()
		return nil
	}
	return comp
}

// lookupMethod resolves the sender-side stub info (the translator would have
// compiled this into the call site; no extra virtual cost beyond StubLookup,
// which invoke charges).
func (rt *Runtime) lookupMethod(gp GPtr, method string) *boundMethod {
	if gp.cls == nil {
		panic("core: global pointer has no class (zero GPtr?)")
	}
	for _, m := range rt.methods {
		if m.class == gp.cls && m.m.Name == method {
			return m
		}
	}
	panic(fmt.Sprintf("core: class %s has no method %q", gp.cls.Name, method))
}

// dispatchLocal runs an RMI whose target lives on the calling node: no
// marshalling, no messages, but threaded/atomic semantics are preserved.
// The returned completion lets local futures join exactly like remote ones.
//
//mpmd:coldpath local dispatch spawns threads and builds completions by design; the allocation-free contract covers the remote wire path
func (rt *Runtime) dispatchLocal(t *threads.Thread, n *nodeRT, bm *boundMethod, gp GPtr, args []Arg, ret Arg, mode callMode) *completion {
	self := n.objs.Get(gp.obj)
	run := func(t2 *threads.Thread) {
		if bm.m.Atomic {
			l := n.objLock(gp.obj)
			l.Lock(t2)
			defer l.Unlock(t2)
		}
		bm.m.Fn(t2, self, args, ret)
	}
	if !bm.m.Threaded && !bm.m.Atomic {
		run(t)
		comp := &completion{mode: mode, done: true}
		if mode == modeFuture {
			comp.sv.Write(t, nil)
		}
		return comp
	}
	switch mode {
	case modeOneWay:
		t.Spawn("lrmi:"+bm.m.Name, run)
		return &completion{mode: mode}
	case modeFuture:
		done := &completion{mode: mode}
		t.Spawn("lrmi:"+bm.m.Name, func(t2 *threads.Thread) {
			run(t2)
			done.done = true
			done.sv.Write(t2, nil)
		})
		return done
	default:
		// Synchronous local threaded call: spawn and join.
		var wg threads.WaitGroup
		wg.Add(1)
		t.Spawn("lrmi:"+bm.m.Name, func(t2 *threads.Thread) {
			run(t2)
			wg.Done(t2)
		})
		wg.Wait(t)
		return &completion{mode: mode, done: true}
	}
}

// objLock returns (lazily creating) the per-object lock used by atomic
// methods.
//
//mpmd:coldpath allocates once per object on its first atomic method; later calls return the cached lock
func (n *nodeRT) objLock(obj int32) *threads.Mutex {
	l, ok := n.objLocks[obj]
	if !ok {
		l = new(threads.Mutex)
		n.objLocks[obj] = l
	}
	return l
}

// pollUntil drives the transport until cond holds (the calling thread
// services the network itself). Ready local threads get the CPU before the
// caller parks: a threaded RMI spawned by a poll may be the very thing that
// makes cond true, and parking for a *message* would miss it.
func (rt *Runtime) pollUntil(t *threads.Thread, me int, cond func() bool) {
	for !cond() {
		if rt.tr.Poll(t, me) {
			continue
		}
		if t.Scheduler().ReadyLen() > 0 {
			t.Yield()
			continue
		}
		rt.tr.WaitMessage(t, me)
	}
	rt.tr.KickService(me)
}

// pollUntilDone is pollUntil specialized to a completion, so the spinning
// fast path constructs no condition closure.
func (rt *Runtime) pollUntilDone(t *threads.Thread, me int, comp *completion) {
	for !comp.done {
		if rt.tr.Poll(t, me) {
			continue
		}
		if t.Scheduler().ReadyLen() > 0 {
			t.Yield()
			continue
		}
		rt.tr.WaitMessage(t, me)
	}
	rt.tr.KickService(me)
}

// chargeRuntime charges d to the runtime-overhead bucket.
//
//mpmd:hotpath
func chargeRuntime(t *threads.Thread, d time.Duration) {
	t.Charge(machine.CatRuntime, d)
}

// registerHandlers installs the runtime's message handlers.
func (rt *Runtime) registerHandlers() {
	rt.hReply = rt.tr.Register("cc.reply", rt.handleReply)
	rt.hResolveUpdate = rt.tr.Register("cc.resolve.update", rt.handleResolveUpdate)
	rt.hInvoke = rt.tr.Register("cc.invoke", rt.handleInvoke)
	rt.registerGPHandlers()
}

// handleInvoke is the generic invocation handler on the receiving node.
//
//mpmd:hotpath
func (rt *Runtime) handleInvoke(t *threads.Thread, m am.Msg) {
	n := rt.nodes[m.Dst]
	cfg := t.Cfg()
	lockPair(t, &n.commLock) // message-layer thread safety

	flags := uint32(m.A[0])
	reqID := m.A[0] >> 32
	cold := flags&flagCold != 0
	wantReply := flags&flagWantReply != 0

	argBytes := m.Payload
	var bm *boundMethod
	if cold {
		nameLen := int(m.A[3])
		argBytes = m.Payload[:len(m.Payload)-nameLen]
		// Resolve the name against the local registry and send the cache
		// update (stub entry point + the ID of a freshly allocated persistent
		// R-buffer) back to the sender.
		chargeRuntime(t, cfg.StubLookup)
		stub, ok := n.reg.Resolve(tham.NameHash(m.A[2]))
		if !ok {
			panic(fmt.Sprintf("core: node %d cannot resolve method hash %#x", m.Dst, m.A[2]))
		}
		bm = rt.methods[stub]
		rb := n.bufs.AllocRBuf(len(argBytes))
		n.node.Acct.Count(machine.CntBufAlloc, 1)
		lockPair(t, &n.commLock)
		rt.tr.Send(t, m.Dst, m.Src, rt.hResolveUpdate,
			[4]uint64{uint64(stub), uint64(bm.hash), uint64(rb.ID)}, nil, false)
		// Cold invocations land in the static buffer area and must be
		// copied into the new R-buffer before dispatch.
		rt.stage(t, n, rb, argBytes)
	} else {
		bm = rt.methods[tham.StubID(m.A[2])]
		if m.A[3] != 0 && !rt.opts.DisablePersistentBuffers {
			// Warm path: the sender targeted the persistent R-buffer by ID
			// (destination-side resolution in the local buffer table), so
			// the data is already in place — no staging copy.
			rb := n.bufs.RBuf(int32(m.A[3] - 1))
			n.bufs.Reuse(rb, len(argBytes))
			copy(rb.Data, argBytes)
			n.node.Acct.Count(machine.CntBufReuse, 1)
		} else {
			rb := n.bufs.AllocRBuf(len(argBytes))
			n.node.Acct.Count(machine.CntBufAlloc, 1)
			rt.stage(t, n, rb, argBytes)
		}
	}

	if bm.m.Threaded || bm.m.Atomic {
		// "the invocation message is always sent to a generic active
		// message handler who creates a new thread and then calls the
		// desired method" (§4). The method body runs after this handler
		// returns — past the payload buffer's run-to-completion window — so
		// the handler retains the buffer across the spawn and the new
		// thread releases it once the arguments are decoded out.
		pb := m.PayloadBuf
		if pb != nil {
			pb.Retain()
		}
		t.Spawn("rmi:"+bm.m.Name, func(t2 *threads.Thread) { //mpmdvet:ignore hotpath threaded dispatch creates a thread per §4; the spawn dwarfs these allocations
			rt.runMethod(t2, n, bm, m, reqID, argBytes, wantReply)
			if pb != nil {
				pb.Release()
			}
		})
		return
	}
	// Non-threaded methods dispatch inline in the polling thread — a direct
	// call, no closure.
	rt.runMethod(t, n, bm, m, reqID, argBytes, wantReply)
}

// stage models the cold-path copy from the static buffer area into an
// R-buffer.
//
//mpmd:coldpath the modeled cold staging copy; its make only fires when the R-buffer must grow
func (rt *Runtime) stage(t *threads.Thread, n *nodeRT, rb *tham.RBuf, argBytes []byte) {
	lockPair(t, &n.bufLock)
	chargeRuntime(t, time.Duration(len(argBytes))*t.Cfg().MemCopyPerByte)
	if cap(rb.Data) < len(argBytes) {
		rb.Data = make([]byte, len(argBytes))
	}
	copy(rb.Data, argBytes)
}

// runMethod unmarshals, executes, and (when requested) replies. Argument
// and return-value instances come from the method's pooled decode frames
// and recycle when the call completes (methods must not retain them).
//
//mpmd:hotpath
func (rt *Runtime) runMethod(t *threads.Thread, n *nodeRT, bm *boundMethod, m am.Msg, reqID uint64, argBytes []byte, wantReply bool) {
	cfg := t.Cfg()
	var frame *argFrame
	var args []Arg
	var ret Arg
	if bm.m.NewArgs != nil || bm.m.NewRet != nil {
		frame = bm.frames.Get().(*argFrame)
		args, ret = frame.args, frame.ret
	}
	if bm.m.NewArgs != nil {
		units := decodeArgs(argBytes, args)
		chargeRuntime(t, time.Duration(units)*cfg.MarshalPerArg+
			time.Duration(len(argBytes))*cfg.MemCopyPerByte)
	} else if len(argBytes) != 0 {
		panic("core: arguments sent to method without parameters: " + bm.qname)
	}

	self := n.objs.Get(int32(m.A[1]))
	if bm.m.Atomic {
		l := n.objLock(int32(m.A[1]))
		l.Lock(t)
		bm.m.Fn(t, self, args, ret)
		l.Unlock(t)
	} else {
		bm.m.Fn(t, self, args, ret)
	}

	if wantReply {
		var buf *wire.Buf
		if ret != nil {
			var n2, units int
			buf, n2, units = marshalOne(ret)
			chargeRuntime(t, time.Duration(units)*cfg.MarshalPerArg+
				time.Duration(n2)*cfg.MemCopyPerByte)
		}
		lockPair(t, &n.commLock)
		rt.tr.SendBuf(t, m.Dst, m.Src, rt.hReply, [4]uint64{reqID}, buf, false)
	}
	if frame != nil {
		// The return value is already encoded on the wire; the frame can
		// serve the next invocation of this method.
		bm.frames.Put(frame)
	}
}

// handleReply lands an RMI completion (and return value) at the initiator:
// the echoed request ID resolves the pending-call record in the local table.
//
//mpmd:hotpath
func (rt *Runtime) handleReply(t *threads.Thread, m am.Msg) {
	n := rt.nodes[m.Dst]
	msg := n.takePending(m.A[0])
	if msg.t0 > 0 {
		if met := n.node.Met; met != nil {
			met.ObserveDur(metrics.HstRMILatency, n.node.M.Now()-msg.t0)
		}
	}
	cfg := t.Cfg()
	lockPair(t, &n.commLock)
	if msg.ret != nil {
		// Return data is copied twice at the initiator: static buffer area
		// -> receive buffer (raw copy), then receive buffer -> the CC++
		// object, which for structured types runs the per-element assignment
		// (§6: "Bulk reads cost more than bulk writes in CC++ because the
		// return data has to be copied twice"; the initiator never passes an
		// R-buffer address, so this cost is unavoidable in the design).
		units := decodeOne(m.Payload, msg.ret)
		chargeRuntime(t, 2*time.Duration(len(m.Payload))*cfg.MemCopyPerByte+
			2*time.Duration(units)*cfg.MarshalPerArg)
	}
	comp := msg.comp
	comp.done = true
	switch comp.mode {
	case modeBlock, modeFuture:
		comp.sv.Write(t, nil)
	}
}

// handleResolveUpdate installs a stub-cache entry after a cold invocation.
// Everything arrives in the words: the resolved stub, the method-name hash,
// and the ID of the persistent R-buffer the resolver allocated (owned and
// only ever dereferenced by the resolver's node).
func (rt *Runtime) handleResolveUpdate(t *threads.Thread, m am.Msg) {
	n := rt.nodes[m.Dst]
	lockPair(t, &n.rtLock)
	n.cache.Update(m.Src, tham.NameHash(m.A[1]), &tham.CacheEntry{
		Stub:   tham.StubID(m.A[0]),
		RBufID: int32(m.A[2]),
	})
}

// --- built-in system class (remote object creation) -------------------------

const sysClassName = "__sys"

type sysObj struct{}

// sysClass defines the built-in per-node system object, whose "create"
// method instantiates processor objects at runtime — CC++'s processor-object
// startup expressed through the runtime's own RMI machinery.
func (rt *Runtime) sysClass() *Class {
	return &Class{
		Name: sysClassName,
		New:  func() any { return &sysObj{} },
		Methods: []*Method{{
			Name:     "create",
			Threaded: true,
			NewArgs:  func() []Arg { return []Arg{&Str{}} },
			NewRet:   func() Arg { return &I64{} },
			Fn: func(t *threads.Thread, self any, args []Arg, ret Arg) {
				className := args[0].(*Str).V
				// Mid-run creation is legal here: this handler runs on the
				// owning node's context.
				gp := rt.createObject(t.Node().ID, className)
				ret.(*I64).V = int64(gp.obj)
			},
		}},
	}
}

// SysGPtr returns the global pointer to a node's system object.
func (rt *Runtime) SysGPtr(node int) GPtr {
	return GPtr{node: int32(node), obj: 0, cls: rt.classes[sysClassName]}
}

// NewObjOn creates an object of the named class on a remote node at runtime
// via a real RMI (CC++'s dynamic processor-object creation) and returns a
// global pointer to it.
func (rt *Runtime) NewObjOn(t *threads.Thread, node int, className string) GPtr {
	cls, ok := rt.classes[className]
	if !ok {
		panic("core: unknown class " + className)
	}
	var ret I64
	rt.Call(t, rt.SysGPtr(node), "create", []Arg{&Str{V: className}}, &ret)
	return GPtr{node: int32(node), obj: int32(ret.V), cls: cls}
}
