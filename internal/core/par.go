package core

import (
	"fmt"

	"repro/internal/threads"
)

// Par runs the given blocks concurrently, as CC++'s par construct: each
// block gets its own thread; the parent blocks until all complete.
func Par(t *threads.Thread, blocks ...func(*threads.Thread)) {
	var wg threads.WaitGroup
	wg.Add(len(blocks))
	for i, b := range blocks {
		b := b
		t.Spawn(fmt.Sprintf("par%d", i), func(t2 *threads.Thread) {
			b(t2)
			wg.Done(t2)
		})
	}
	wg.Wait(t)
}

// ParFor runs n loop iterations concurrently, as CC++'s parfor construct:
// one thread per iteration (which is exactly why the paper's CC++ prefetch
// micro-benchmark pays ~21 µs of thread time per element), joining before
// returning.
func ParFor(t *threads.Thread, n int, body func(t2 *threads.Thread, i int)) {
	var wg threads.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		t.Spawn(fmt.Sprintf("parfor%d", i), func(t2 *threads.Thread) {
			body(t2, i)
			wg.Done(t2)
		})
	}
	wg.Wait(t)
}

// Spawn launches fn on a new thread without joining, as CC++'s spawn.
// The returned handle allows an explicit later join via its sync variable.
func Spawn(t *threads.Thread, name string, fn func(*threads.Thread)) *threads.SyncVar {
	done := new(threads.SyncVar)
	t.Spawn(name, func(t2 *threads.Thread) {
		fn(t2)
		done.Write(t2, nil)
	})
	return done
}
