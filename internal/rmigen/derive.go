package rmigen

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"repro/internal/core"
	"repro/internal/threads"
)

// MethodOpts carries the per-method dispatch flags the CC++ translator took
// from declarations: Threaded runs the method on a fresh thread at the
// receiver (required whenever it may block), Atomic additionally holds the
// target object's lock (and implies a threaded invocation, as in the paper).
type MethodOpts struct {
	Threaded bool
	Atomic   bool
}

// OptionsProvider is implemented (optionally) by processor-object structs to
// flag methods as threaded or atomic; the map is keyed by Go method name.
type OptionsProvider interface {
	RMIOptions() map[string]MethodOpts
}

var threadType = reflect.TypeOf((*threads.Thread)(nil))

// Method is one derived RMI-callable method: its marshalling plans, the
// reflective trampoline installed in the core method table, and a pool of
// call frames so synchronous typed invocations reuse their wire Arg
// instances call over call.
type Method struct {
	Name   string
	args   *valuePlan // nil when the method takes no argument value
	ret    *valuePlan // nil when the method returns nothing
	opts   MethodOpts
	frames sync.Pool // *CallFrame
}

// CallFrame is one pooled set of sender-side wire Args (plus the return
// Arg) for a Method. Frames recycle through AcquireFrame/ReleaseFrame on
// the synchronous invoke path; asynchronous calls keep theirs (the future
// escapes to the application).
type CallFrame struct {
	Args []core.Arg
	Ret  core.Arg
}

// HasArgs reports whether the method takes an argument value.
func (m *Method) HasArgs() bool { return m.args != nil }

// DefersLocally reports whether a node-local invocation of the method runs
// its body on a spawned thread after the invoking call returns (Threaded or
// Atomic dispatch). A one-way local call to such a method still holds the
// wire Args when the caller comes back, so its frame must not recycle.
func (m *Method) DefersLocally() bool { return m.opts.Threaded || m.opts.Atomic }

// HasRet reports whether the method returns a value.
func (m *Method) HasRet() bool { return m.ret != nil }

// AcquireFrame returns a call frame with fresh-or-recycled wire Args. A
// return plan containing slice components gets a fresh Ret every call: the
// decoded slice is handed to the application (which keeps it), so it must
// not ride a recycled Arg whose next decode would overwrite it. Scalar and
// string returns are copied out by value and reuse theirs.
func (m *Method) AcquireFrame() *CallFrame {
	f, _ := m.frames.Get().(*CallFrame)
	if f == nil {
		f = &CallFrame{}
		if m.args != nil {
			f.Args = m.args.newArgs()
		}
		if m.ret != nil {
			f.Ret = m.ret.newRet()
		}
		return f
	}
	if m.ret != nil && m.ret.hasSlices {
		f.Ret = m.ret.newRet()
	}
	return f
}

// ReleaseFrame recycles a frame once the call has completed and the result
// has been loaded out.
func (m *Method) ReleaseFrame(f *CallFrame) { m.frames.Put(f) }

// StoreArgs lowers the argument value at p (a pointer to the Go argument
// value, e.g. &args in a generic Invoke) onto the frame's wire Args — same
// Arg types, same wire bytes, same marshal-unit counts as a hand-written
// []Arg, with zero per-call reflection.
func (m *Method) StoreArgs(p unsafe.Pointer, args []core.Arg) {
	m.args.storePtr(p, args)
}

// LoadRetPtr decodes a completed return Arg into the Go result value at p.
func (m *Method) LoadRetPtr(a core.Arg, p unsafe.Pointer) { m.ret.loadRetPtr(p, a) }

// WireArgs lowers the argument value into a fresh []core.Arg slice (the
// unpooled path used by asynchronous invocations, whose frames escape).
// Returns nil for argument-less methods.
func (m *Method) WireArgs(v reflect.Value) []core.Arg {
	if m.args == nil {
		return nil
	}
	args := m.args.newArgs()
	m.args.store(v, args)
	return args
}

// NewRetArg returns a fresh wire Arg for the return value.
func (m *Method) NewRetArg() core.Arg { return m.ret.newRet() }

// LoadRet decodes a completed return Arg into the addressable Go value.
func (m *Method) LoadRet(a core.Arg, into reflect.Value) { m.ret.loadRet(into, a) }

// Class is a typed processor-object class derived from a Go struct: the
// registration-time product the v2 API layers over core.Class.
type Class struct {
	Name string
	// Ptr is the *T type the class was derived from.
	Ptr reflect.Type
	// Core is the derived untyped class installed in the runtime.
	Core    *core.Class
	methods map[string]*Method
	names   []string // sorted, for error messages
}

// Method resolves a derived method by name.
func (c *Class) Method(name string) (*Method, error) {
	m, ok := c.methods[name]
	if !ok {
		return nil, fmt.Errorf("class %s has no RMI method %q (have: %s)",
			c.Name, name, strings.Join(c.names, ", "))
	}
	return m, nil
}

// Bind resolves method and validates the caller's argument and return types
// against the derived signature — the typed API's bind-time check, so type
// mismatches surface as setup errors instead of mid-run corruption.
func (c *Class) Bind(method string, argsT, retT reflect.Type, oneWay bool) (*Method, error) {
	m, err := c.Method(method)
	if err != nil {
		return nil, err
	}
	if m.args == nil {
		if argsT != voidType {
			return nil, fmt.Errorf("method %s::%s takes no arguments; use mpmd.Void as the argument type (got %s)",
				c.Name, method, argsT)
		}
	} else if argsT != m.args.typ {
		return nil, fmt.Errorf("argument type mismatch: method %s::%s takes %s, got %s",
			c.Name, method, m.args.typ, argsT)
	}
	if oneWay {
		if m.ret != nil {
			return nil, fmt.Errorf("one-way invocation of %s::%s, which returns %s (one-way methods must not return a value)",
				c.Name, method, m.ret.typ)
		}
		return m, nil
	}
	if m.ret == nil {
		if retT != voidType {
			return nil, fmt.Errorf("method %s::%s returns nothing; use mpmd.Void as the result type (got %s)",
				c.Name, method, retT)
		}
	} else if retT != m.ret.typ {
		return nil, fmt.Errorf("result type mismatch: method %s::%s returns %s, got %s",
			c.Name, method, m.ret.typ, retT)
	}
	return m, nil
}

// DeriveClass builds a typed class from *T: every exported method with
// signature
//
//	func (x *T) Name(t *threads.Thread[, args A]) [R]
//
// becomes RMI-callable, with A and R marshalled through the plans in
// codec.go. Exported methods whose first parameter is not *threads.Thread
// are ordinary helpers and are skipped; methods that do take a thread but
// have an otherwise invalid signature are registration errors — the typo
// surfaces at setup, not as a mid-run panic.
func DeriveClass(ptrType reflect.Type) (*Class, error) {
	if ptrType.Kind() != reflect.Pointer || ptrType.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("processor-object type must be a struct, got %s", ptrType)
	}
	elem := ptrType.Elem()
	if elem.Name() == "" {
		return nil, fmt.Errorf("processor-object struct must be a named type, got %s", elem)
	}
	cls := &Class{
		Name:    elem.Name(),
		Ptr:     ptrType,
		methods: make(map[string]*Method),
	}

	var opts map[string]MethodOpts
	if op, ok := reflect.New(elem).Interface().(OptionsProvider); ok {
		opts = op.RMIOptions()
	} else if _, has := ptrType.MethodByName("RMIOptions"); has {
		// A misdeclared RMIOptions would otherwise be silently ignored and
		// drop Threaded/Atomic flags — turning a blocking method into an
		// inline handler. Surface the signature error at setup.
		return nil, fmt.Errorf("%s has an RMIOptions method that does not satisfy rmigen.OptionsProvider (want RMIOptions() map[string]MethodOpts)", ptrType)
	}

	cc := &core.Class{
		Name: cls.Name,
		New:  func() any { return reflect.New(elem).Interface() },
	}
	for i := 0; i < ptrType.NumMethod(); i++ {
		rm := ptrType.Method(i)
		if rm.Name == "RMIOptions" {
			continue
		}
		ft := rm.Type // func(recv *T, ...)
		if ft.NumIn() < 2 || ft.In(1) != threadType {
			continue // helper method, not an RMI entry point
		}
		m := &Method{Name: rm.Name, opts: opts[rm.Name]}
		if ft.NumIn() > 3 {
			return nil, fmt.Errorf("method %s.%s: RMI methods take at most (t *Thread, args A); got %d parameters",
				cls.Name, rm.Name, ft.NumIn()-1)
		}
		if ft.NumOut() > 1 {
			return nil, fmt.Errorf("method %s.%s: RMI methods return at most one value, got %d",
				cls.Name, rm.Name, ft.NumOut())
		}
		var err error
		if ft.NumIn() == 3 {
			if m.args, err = planFor(ft.In(2)); err != nil {
				return nil, fmt.Errorf("method %s.%s argument: %w", cls.Name, rm.Name, err)
			}
		}
		if ft.NumOut() == 1 {
			if m.ret, err = planFor(ft.Out(0)); err != nil {
				return nil, fmt.Errorf("method %s.%s result: %w", cls.Name, rm.Name, err)
			}
		}
		cls.methods[rm.Name] = m
		cls.names = append(cls.names, rm.Name)
		cc.Methods = append(cc.Methods, deriveCoreMethod(m, rm.Func))
	}
	sort.Strings(cls.names)
	if len(cls.methods) == 0 {
		return nil, fmt.Errorf("type %s has no RMI methods (want exported methods with a *mpmd.Thread first parameter)", ptrType)
	}
	for name := range opts {
		if _, ok := cls.methods[name]; !ok {
			return nil, fmt.Errorf("RMIOptions names method %q, but %s has no such RMI method (have: %s)",
				name, cls.Name, strings.Join(cls.names, ", "))
		}
	}
	cls.Core = cc
	return cls, nil
}

// deriveCoreMethod builds the untyped core.Method trampoline for one typed
// method. The reflective unpack/call/pack runs in wall time only — it makes
// no virtual-time charges, so the calibrated cost of a typed call is
// byte-for-byte the cost of the equivalent hand-written one.
func deriveCoreMethod(m *Method, fn reflect.Value) *core.Method {
	cm := &core.Method{
		Name:     m.Name,
		Threaded: m.opts.Threaded,
		Atomic:   m.opts.Atomic,
	}
	if m.args != nil {
		args := m.args
		cm.NewArgs = func() []core.Arg { return args.newArgs() }
	}
	if m.ret != nil {
		ret := m.ret
		cm.NewRet = func() core.Arg { return ret.newRet() }
	}
	cm.Fn = func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
		in := make([]reflect.Value, 0, 3)
		in = append(in, reflect.ValueOf(self), reflect.ValueOf(t))
		if m.args != nil {
			// One allocation for the argument value, then the compiled
			// offset-based loads; the field plans touch no reflect.Value.
			ap := reflect.New(m.args.typ)
			m.args.loadPtr(ap.UnsafePointer(), args)
			in = append(in, ap.Elem())
		}
		out := fn.Call(in)
		if m.ret != nil {
			m.ret.storeRet(out[0], ret)
		}
	}
	return cm
}

// Registry is the per-runtime table of typed classes, stored in the core
// runtime's façade slot.
type Registry struct {
	byType map[reflect.Type]*Class
}

// For returns (creating on first use) the typed registry of a runtime.
func For(rt *core.Runtime) *Registry {
	if v := rt.Facade(); v != nil {
		return v.(*Registry)
	}
	r := &Registry{byType: make(map[reflect.Type]*Class)}
	rt.SetFacade(r)
	return r
}

// Register derives a typed class from ptrType and installs it in rt. All
// validation happens here, at setup time: bad method signatures, duplicate
// registrations, and name collisions with untyped classes come back as
// errors.
func Register(rt *core.Runtime, ptrType reflect.Type) (*Class, error) {
	if rt.Started() {
		return nil, fmt.Errorf("cannot register %s: the runtime is already running (register classes before Run)", ptrType)
	}
	reg := For(rt)
	if _, dup := reg.byType[ptrType]; dup {
		return nil, fmt.Errorf("type %s is already registered", ptrType)
	}
	cls, err := DeriveClass(ptrType)
	if err != nil {
		return nil, err
	}
	if rt.HasClass(cls.Name) {
		return nil, fmt.Errorf("class name %q is already registered (by the untyped API?)", cls.Name)
	}
	rt.RegisterClass(cls.Core)
	reg.byType[ptrType] = cls
	return cls, nil
}

// Lookup resolves the typed class previously registered for ptrType.
func Lookup(rt *core.Runtime, ptrType reflect.Type) (*Class, error) {
	if v := rt.Facade(); v != nil {
		if cls, ok := v.(*Registry).byType[ptrType]; ok {
			return cls, nil
		}
	}
	return nil, fmt.Errorf("type %s is not registered (call mpmd.RegisterClass[%s] before use)",
		ptrType, ptrType.Elem().Name())
}
