// Package rmigen derives RMI method tables and marshalling code from
// ordinary Go types at registration time — the v2 typed façade's stand-in
// for the stub generation CC++'s front-end translator performed.
//
// The derived code lowers onto the untyped core exactly: every argument
// struct becomes the []core.Arg slice a hand-written Class would have used
// (one provided Arg per exported field, same wire bytes, same marshal-unit
// counts), so the calibrated cost model cannot tell typed and untyped calls
// apart. All reflection work happens either at registration time (plan
// construction) or in wall-time-only code paths (no virtual-time charges),
// which is what the typed/untyped parity test in mpmd verifies.
package rmigen

import (
	"fmt"
	"reflect"

	"repro/internal/core"
)

// Void is the empty value type used for "no arguments" and "no return
// value" positions in typed invocations.
type Void = struct{}

var voidType = reflect.TypeOf(Void{})

// fieldPlan marshals one component of a value type: a struct field, or the
// value itself for scalar value types (index < 0).
type fieldPlan struct {
	index int
	name  string
	make  func() core.Arg
	// store copies the Go value component into a wire Arg (sender side and
	// receiver-side return values).
	store func(v reflect.Value, a core.Arg)
	// load copies a wire Arg back into the Go value component.
	load func(v reflect.Value, a core.Arg)
}

// valuePlan is the precompiled marshalling plan for one argument or return
// type. Plans are built once at registration; per-call work is a handful of
// interface assertions and field copies.
type valuePlan struct {
	typ    reflect.Type
	fields []fieldPlan
}

// supported value component kinds and their wire lowering. These are
// exactly the provided core Arg types, so typed payloads are byte-identical
// to hand-written ones.
func fieldPlanFor(index int, name string, t reflect.Type) (fieldPlan, error) {
	fp := fieldPlan{index: index, name: name}
	at := func(v reflect.Value) reflect.Value {
		if index < 0 {
			return v
		}
		return v.Field(index)
	}
	switch {
	case t.Kind() == reflect.Int64 || t.Kind() == reflect.Int:
		fp.make = func() core.Arg { return &core.I64{} }
		fp.store = func(v reflect.Value, a core.Arg) { a.(*core.I64).V = at(v).Int() }
		fp.load = func(v reflect.Value, a core.Arg) { at(v).SetInt(a.(*core.I64).V) }
	case t.Kind() == reflect.Float64:
		fp.make = func() core.Arg { return &core.F64{} }
		fp.store = func(v reflect.Value, a core.Arg) { a.(*core.F64).V = at(v).Float() }
		fp.load = func(v reflect.Value, a core.Arg) { at(v).SetFloat(a.(*core.F64).V) }
	case t.Kind() == reflect.String:
		fp.make = func() core.Arg { return &core.Str{} }
		fp.store = func(v reflect.Value, a core.Arg) { a.(*core.Str).V = at(v).String() }
		fp.load = func(v reflect.Value, a core.Arg) { at(v).SetString(a.(*core.Str).V) }
	case t == reflect.TypeOf([]float64(nil)):
		fp.make = func() core.Arg { return &core.F64Slice{} }
		fp.store = func(v reflect.Value, a core.Arg) { a.(*core.F64Slice).V = at(v).Interface().([]float64) }
		fp.load = func(v reflect.Value, a core.Arg) { at(v).Set(reflect.ValueOf(a.(*core.F64Slice).V)) }
	case t == reflect.TypeOf([]byte(nil)):
		fp.make = func() core.Arg { return &core.Bytes{} }
		fp.store = func(v reflect.Value, a core.Arg) { a.(*core.Bytes).V = at(v).Bytes() }
		fp.load = func(v reflect.Value, a core.Arg) { at(v).SetBytes(a.(*core.Bytes).V) }
	default:
		return fp, fmt.Errorf("unsupported type %s (supported: int, int64, float64, string, []byte, []float64, or a struct of those)", t)
	}
	return fp, nil
}

// planFor compiles the marshalling plan for an argument or return type:
// either one of the supported scalar/slice kinds directly, or a struct whose
// exported fields are all supported kinds.
func planFor(t reflect.Type) (*valuePlan, error) {
	p := &valuePlan{typ: t}
	if t.Kind() != reflect.Struct {
		fp, err := fieldPlanFor(-1, t.String(), t)
		if err != nil {
			return nil, err
		}
		p.fields = []fieldPlan{fp}
		return p, nil
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			return nil, fmt.Errorf("struct %s has unexported field %s (marshalled structs must be fully exported)", t, f.Name)
		}
		fp, err := fieldPlanFor(i, f.Name, f.Type)
		if err != nil {
			return nil, fmt.Errorf("struct %s field %s: %w", t, f.Name, err)
		}
		p.fields = append(p.fields, fp)
	}
	if len(p.fields) == 0 {
		return nil, fmt.Errorf("struct %s has no exported fields; use no parameter (or no result) instead of an empty struct", t)
	}
	return p, nil
}

// newArgs returns fresh wire Args for the plan, one per component — the
// same slice shape a hand-written Method.NewArgs would build.
func (p *valuePlan) newArgs() []core.Arg {
	args := make([]core.Arg, len(p.fields))
	for i := range p.fields {
		args[i] = p.fields[i].make()
	}
	return args
}

// store copies the Go value into the wire Args.
func (p *valuePlan) store(v reflect.Value, args []core.Arg) {
	for i := range p.fields {
		p.fields[i].store(v, args[i])
	}
}

// load copies the wire Args into the (addressable) Go value.
func (p *valuePlan) load(v reflect.Value, args []core.Arg) {
	for i := range p.fields {
		p.fields[i].load(v, args[i])
	}
}

// newRet returns the single wire Arg for a return value: the provided Arg
// directly for single-component types, a group for multi-field structs.
// Either way the wire size and marshal-unit count equal the sum over
// components, matching what separate hand-written Args would cost.
func (p *valuePlan) newRet() core.Arg {
	if len(p.fields) == 1 {
		return p.fields[0].make()
	}
	return &group{args: p.newArgs()}
}

// storeRet fills a return Arg from the method's Go result value.
func (p *valuePlan) storeRet(v reflect.Value, ret core.Arg) {
	if len(p.fields) == 1 {
		p.fields[0].store(v, ret)
		return
	}
	p.store(v, ret.(*group).args)
}

// loadRet decodes a return Arg into the (addressable) Go result value.
func (p *valuePlan) loadRet(v reflect.Value, ret core.Arg) {
	if len(p.fields) == 1 {
		p.fields[0].load(v, ret)
		return
	}
	p.load(v, ret.(*group).args)
}

// group packs several wire Args into one return value. Encoding is the
// concatenation of the member encodings; size and marshal units are the
// sums — identical to sending the members as separate Args, so the cost
// model sees no difference.
type group struct{ args []core.Arg }

// WireSize implements core.Arg.
func (g *group) WireSize() int {
	n := 0
	for _, a := range g.args {
		n += a.WireSize()
	}
	return n
}

// MarshalUnits implements core.Arg.
func (g *group) MarshalUnits() int {
	n := 0
	for _, a := range g.args {
		n += a.MarshalUnits()
	}
	return n
}

// Encode implements core.Arg.
func (g *group) Encode(b []byte) int {
	off := 0
	for _, a := range g.args {
		off += a.Encode(b[off:])
	}
	return off
}

// Decode implements core.Arg.
func (g *group) Decode(b []byte) int {
	off := 0
	for _, a := range g.args {
		off += a.Decode(b[off:])
	}
	return off
}
