// Package rmigen derives RMI method tables and marshalling code from
// ordinary Go types at registration time — the v2 typed façade's stand-in
// for the stub generation CC++'s front-end translator performed.
//
// The derived code lowers onto the untyped core exactly: every argument
// struct becomes the []core.Arg slice a hand-written Class would have used
// (one provided Arg per exported field, same wire bytes, same marshal-unit
// counts), so the calibrated cost model cannot tell typed and untyped calls
// apart. All reflection work happens either at registration time (plan
// construction) or in wall-time-only code paths (no virtual-time charges),
// which is what the typed/untyped parity test in mpmd verifies.
package rmigen

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/core"
)

// Void is the empty value type used for "no arguments" and "no return
// value" positions in typed invocations.
type Void = struct{}

var voidType = reflect.TypeOf(Void{})

// fieldPlan marshals one component of a value type: a struct field, or the
// value itself for scalar value types (index < 0). The store/load code is
// compiled at derive time into offset-based accessors over raw pointers —
// all reflection happens when the plan is built; a call moves the component
// with two pointer dereferences and an interface assertion, no
// reflect.Value traffic.
type fieldPlan struct {
	index int
	name  string
	off   uintptr // byte offset of the component within the value
	slice bool    // component is a slice kind (decode aliases the Arg)
	make  func() core.Arg
	// store copies the Go value component at p (a pointer to the whole
	// argument/return value) into a wire Arg.
	store func(p unsafe.Pointer, a core.Arg)
	// load copies a wire Arg back into the value component at p.
	load func(p unsafe.Pointer, a core.Arg)
}

// valuePlan is the precompiled marshalling plan for one argument or return
// type. Plans are built once at registration; per-call work is a handful of
// interface assertions and field copies.
type valuePlan struct {
	typ    reflect.Type
	fields []fieldPlan
	// hasSlices records whether any component is a slice kind. A decoded
	// slice aliases the wire Arg's backing array, so return values of such
	// plans must not ride pooled Args (the application keeps the result;
	// recycling would let the next call overwrite it).
	hasSlices bool
}

// supported value component kinds and their wire lowering. These are
// exactly the provided core Arg types, so typed payloads are byte-identical
// to hand-written ones.
func fieldPlanFor(index int, name string, t reflect.Type, off uintptr) (fieldPlan, error) {
	fp := fieldPlan{index: index, name: name, off: off}
	switch {
	case t.Kind() == reflect.Int64:
		fp.make = func() core.Arg { return &core.I64{} }
		fp.store = func(p unsafe.Pointer, a core.Arg) { a.(*core.I64).V = *(*int64)(unsafe.Add(p, off)) }
		fp.load = func(p unsafe.Pointer, a core.Arg) { *(*int64)(unsafe.Add(p, off)) = a.(*core.I64).V }
	case t.Kind() == reflect.Int:
		fp.make = func() core.Arg { return &core.I64{} }
		fp.store = func(p unsafe.Pointer, a core.Arg) { a.(*core.I64).V = int64(*(*int)(unsafe.Add(p, off))) }
		fp.load = func(p unsafe.Pointer, a core.Arg) { *(*int)(unsafe.Add(p, off)) = int(a.(*core.I64).V) }
	case t.Kind() == reflect.Float64:
		fp.make = func() core.Arg { return &core.F64{} }
		fp.store = func(p unsafe.Pointer, a core.Arg) { a.(*core.F64).V = *(*float64)(unsafe.Add(p, off)) }
		fp.load = func(p unsafe.Pointer, a core.Arg) { *(*float64)(unsafe.Add(p, off)) = a.(*core.F64).V }
	case t.Kind() == reflect.String:
		fp.make = func() core.Arg { return &core.Str{} }
		fp.store = func(p unsafe.Pointer, a core.Arg) { a.(*core.Str).V = *(*string)(unsafe.Add(p, off)) }
		fp.load = func(p unsafe.Pointer, a core.Arg) { *(*string)(unsafe.Add(p, off)) = a.(*core.Str).V }
	case t == reflect.TypeOf([]float64(nil)):
		fp.slice = true
		fp.make = func() core.Arg { return &core.F64Slice{} }
		fp.store = func(p unsafe.Pointer, a core.Arg) { a.(*core.F64Slice).V = *(*[]float64)(unsafe.Add(p, off)) }
		fp.load = func(p unsafe.Pointer, a core.Arg) { *(*[]float64)(unsafe.Add(p, off)) = a.(*core.F64Slice).V }
	case t == reflect.TypeOf([]byte(nil)):
		fp.slice = true
		fp.make = func() core.Arg { return &core.Bytes{} }
		fp.store = func(p unsafe.Pointer, a core.Arg) { a.(*core.Bytes).V = *(*[]byte)(unsafe.Add(p, off)) }
		fp.load = func(p unsafe.Pointer, a core.Arg) { *(*[]byte)(unsafe.Add(p, off)) = a.(*core.Bytes).V }
	default:
		return fp, fmt.Errorf("unsupported type %s (supported: int, int64, float64, string, []byte, []float64, or a struct of those)", t)
	}
	return fp, nil
}

// planFor compiles the marshalling plan for an argument or return type:
// either one of the supported scalar/slice kinds directly, or a struct whose
// exported fields are all supported kinds. Field offsets are resolved here,
// at derive time — per-call marshalling never touches reflection again.
func planFor(t reflect.Type) (*valuePlan, error) {
	p := &valuePlan{typ: t}
	if t.Kind() != reflect.Struct {
		fp, err := fieldPlanFor(-1, t.String(), t, 0)
		if err != nil {
			return nil, err
		}
		p.fields = []fieldPlan{fp}
		p.hasSlices = fp.slice
		return p, nil
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			return nil, fmt.Errorf("struct %s has unexported field %s (marshalled structs must be fully exported)", t, f.Name)
		}
		fp, err := fieldPlanFor(i, f.Name, f.Type, f.Offset)
		if err != nil {
			return nil, fmt.Errorf("struct %s field %s: %w", t, f.Name, err)
		}
		p.hasSlices = p.hasSlices || fp.slice
		p.fields = append(p.fields, fp)
	}
	if len(p.fields) == 0 {
		return nil, fmt.Errorf("struct %s has no exported fields; use no parameter (or no result) instead of an empty struct", t)
	}
	return p, nil
}

// clearRefs drops the heap references a marshal left in the wire Args
// (slice backing arrays, string data), so a frame returning to the codec
// pool does not retain application payloads.
func (p *valuePlan) clearRefs(args []core.Arg) {
	for i := range p.fields {
		switch a := args[i].(type) {
		case *core.F64Slice:
			a.V = nil
		case *core.Bytes:
			a.V = nil
		case *core.Str:
			a.V = ""
		}
	}
}

// newArgs returns fresh wire Args for the plan, one per component — the
// same slice shape a hand-written Method.NewArgs would build.
func (p *valuePlan) newArgs() []core.Arg {
	args := make([]core.Arg, len(p.fields))
	for i := range p.fields {
		args[i] = p.fields[i].make()
	}
	return args
}

// storePtr copies the Go value at p into the wire Args — the compiled,
// reflection-free per-call path.
//
//mpmd:hotpath
func (p *valuePlan) storePtr(ptr unsafe.Pointer, args []core.Arg) {
	for i := range p.fields {
		p.fields[i].store(ptr, args[i])
	}
}

// loadPtr copies the wire Args into the Go value at p.
//
//mpmd:hotpath
func (p *valuePlan) loadPtr(ptr unsafe.Pointer, args []core.Arg) {
	for i := range p.fields {
		p.fields[i].load(ptr, args[i])
	}
}

// store copies the Go value into the wire Args. Reflect-typed entry point
// for wall-time-only paths that hold a reflect.Value; non-addressable
// values are copied to an addressable temporary first.
func (p *valuePlan) store(v reflect.Value, args []core.Arg) {
	if !v.CanAddr() {
		tmp := reflect.New(p.typ).Elem()
		tmp.Set(v)
		v = tmp
	}
	p.storePtr(v.Addr().UnsafePointer(), args)
}

// load copies the wire Args into the (addressable) Go value.
func (p *valuePlan) load(v reflect.Value, args []core.Arg) {
	p.loadPtr(v.Addr().UnsafePointer(), args)
}

// newRet returns the single wire Arg for a return value: the provided Arg
// directly for single-component types, a group for multi-field structs.
// Either way the wire size and marshal-unit count equal the sum over
// components, matching what separate hand-written Args would cost.
func (p *valuePlan) newRet() core.Arg {
	if len(p.fields) == 1 {
		return p.fields[0].make()
	}
	return &group{args: p.newArgs()}
}

// storeRet fills a return Arg from the method's Go result value.
func (p *valuePlan) storeRet(v reflect.Value, ret core.Arg) {
	if !v.CanAddr() {
		tmp := reflect.New(p.typ).Elem()
		tmp.Set(v)
		v = tmp
	}
	p.storeRetPtr(v.Addr().UnsafePointer(), ret)
}

// storeRetPtr fills a return Arg from the result value at ptr.
//
//mpmd:hotpath
func (p *valuePlan) storeRetPtr(ptr unsafe.Pointer, ret core.Arg) {
	if len(p.fields) == 1 {
		p.fields[0].store(ptr, ret)
		return
	}
	p.storePtr(ptr, ret.(*group).args)
}

// loadRet decodes a return Arg into the (addressable) Go result value.
func (p *valuePlan) loadRet(v reflect.Value, ret core.Arg) {
	p.loadRetPtr(v.Addr().UnsafePointer(), ret)
}

// loadRetPtr decodes a return Arg into the result value at ptr.
//
//mpmd:hotpath
func (p *valuePlan) loadRetPtr(ptr unsafe.Pointer, ret core.Arg) {
	if len(p.fields) == 1 {
		p.fields[0].load(ptr, ret)
		return
	}
	p.loadPtr(ptr, ret.(*group).args)
}

// group packs several wire Args into one return value. Encoding is the
// concatenation of the member encodings; size and marshal units are the
// sums — identical to sending the members as separate Args, so the cost
// model sees no difference.
type group struct{ args []core.Arg }

// WireSize implements core.Arg.
func (g *group) WireSize() int {
	n := 0
	for _, a := range g.args {
		n += a.WireSize()
	}
	return n
}

// MarshalUnits implements core.Arg.
func (g *group) MarshalUnits() int {
	n := 0
	for _, a := range g.args {
		n += a.MarshalUnits()
	}
	return n
}

// Encode implements core.Arg.
func (g *group) Encode(b []byte) int {
	off := 0
	for _, a := range g.args {
		off += a.Encode(b[off:])
	}
	return off
}

// Decode implements core.Arg.
func (g *group) Decode(b []byte) int {
	off := 0
	for _, a := range g.args {
		off += a.Decode(b[off:])
	}
	return off
}
