package rmigen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// wireBytes encodes a slice of Args the way the core sender does.
func wireBytes(t *testing.T, args []core.Arg) []byte {
	t.Helper()
	total, units := 0, 0
	for _, a := range args {
		total += a.WireSize()
		units += a.MarshalUnits()
	}
	buf := make([]byte, total)
	off := 0
	for _, a := range args {
		off += a.Encode(buf[off:])
	}
	if off != total {
		t.Fatalf("encode wrote %d of %d", off, total)
	}
	_ = units
	return buf
}

type mixed struct {
	N int64
	X float64
	S string
	B []byte
	V []float64
}

func TestStructLowersToProvidedArgs(t *testing.T) {
	plan, err := planFor(reflect.TypeOf(mixed{}))
	if err != nil {
		t.Fatal(err)
	}
	val := mixed{N: 7, X: 2.5, S: "hey", B: []byte{1, 2}, V: []float64{3, 4, 5}}
	typed := plan.newArgs()
	plan.store(reflect.ValueOf(val), typed)

	hand := []core.Arg{
		&core.I64{V: 7}, &core.F64{V: 2.5}, &core.Str{V: "hey"},
		&core.Bytes{V: []byte{1, 2}}, &core.F64Slice{V: []float64{3, 4, 5}},
	}
	tb, hb := wireBytes(t, typed), wireBytes(t, hand)
	if string(tb) != string(hb) {
		t.Fatalf("typed wire bytes differ from hand-written args:\n%v\n%v", tb, hb)
	}
	for i := range typed {
		if typed[i].MarshalUnits() != hand[i].MarshalUnits() {
			t.Fatalf("arg %d marshal units: typed %d, hand %d", i, typed[i].MarshalUnits(), hand[i].MarshalUnits())
		}
	}

	// Round trip through decode.
	var back mixed
	bv := reflect.ValueOf(&back).Elem()
	fresh := plan.newArgs()
	off := 0
	for _, a := range fresh {
		off += a.Decode(tb[off:])
	}
	plan.load(bv, fresh)
	if back.N != 7 || back.X != 2.5 || back.S != "hey" || len(back.B) != 2 || len(back.V) != 3 || back.V[2] != 5 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestScalarPlanAndGroupRet(t *testing.T) {
	// Scalar value types plan as a single provided Arg.
	p, err := planFor(reflect.TypeOf(int64(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.newRet().(*core.I64); !ok {
		t.Fatalf("int64 ret is not a plain I64")
	}

	// Multi-field struct returns pack into a group costing the sum.
	type pair struct {
		A int64
		X float64
	}
	p, err = planFor(reflect.TypeOf(pair{}))
	if err != nil {
		t.Fatal(err)
	}
	ret := p.newRet()
	if ret.WireSize() != 16 || ret.MarshalUnits() != 2 {
		t.Fatalf("group size/units = %d/%d, want 16/2", ret.WireSize(), ret.MarshalUnits())
	}
	p.storeRet(reflect.ValueOf(pair{A: 1, X: 2}), ret)
	buf := make([]byte, ret.WireSize())
	ret.Encode(buf)
	fresh := p.newRet()
	if n := fresh.Decode(buf); n != 16 {
		t.Fatalf("group decode consumed %d", n)
	}
	var out pair
	p.loadRet(reflect.ValueOf(&out).Elem(), fresh)
	if out != (pair{A: 1, X: 2}) {
		t.Fatalf("group round trip = %+v", out)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []struct {
		typ  reflect.Type
		want string
	}{
		{reflect.TypeOf(struct{ C complex128 }{}), "unsupported"},
		{reflect.TypeOf(struct{ n int64 }{}), "unexported"},
		{reflect.TypeOf(struct{}{}), "no exported fields"},
		{reflect.TypeOf(map[string]int{}), "unsupported"},
	}
	for _, c := range cases {
		if _, err := planFor(c.typ); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("planFor(%s) error = %v, want containing %q", c.typ, err, c.want)
		}
	}
}

// calc is a processor object used by the derivation tests.
type calc struct {
	total int64
	hits  int64
}

func (c *calc) Add(t *threads.Thread, n int64) { c.total += n }

func (c *calc) Total(t *threads.Thread) int64 { return c.total }

func (c *calc) Scale(t *threads.Thread, args struct {
	V []float64
	K float64
}) []float64 {
	out := make([]float64, len(args.V))
	for i, v := range args.V {
		out[i] = v * args.K
	}
	return out
}

// Helper has no thread parameter: not an RMI method, must be skipped.
func (c *calc) Helper() int { return 0 }

func (c *calc) RMIOptions() map[string]MethodOpts {
	return map[string]MethodOpts{"Scale": {Threaded: true}}
}

func TestDeriveClass(t *testing.T) {
	cls, err := DeriveClass(reflect.TypeOf((*calc)(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if cls.Name != "calc" {
		t.Fatalf("name = %q", cls.Name)
	}
	if got := strings.Join(cls.names, ","); got != "Add,Scale,Total" {
		t.Fatalf("methods = %s", got)
	}
	if _, err := cls.Method("Helper"); err == nil {
		t.Fatal("Helper derived as RMI method")
	}
	for _, cm := range cls.Core.Methods {
		if cm.Name == "Scale" && !cm.Threaded {
			t.Fatal("Scale lost its Threaded flag")
		}
	}
}

func TestDeriveEndToEnd(t *testing.T) {
	m := machine.New(machine.SP1997(), 2)
	rt := core.NewRuntime(m)
	if _, err := Register(rt, reflect.TypeOf((*calc)(nil))); err != nil {
		t.Fatal(err)
	}
	gp := rt.CreateObject(1, "calc")
	var total int64
	var scaled []float64
	rt.OnNode(0, func(th *threads.Thread) {
		cls, err := Lookup(rt, reflect.TypeOf((*calc)(nil)))
		if err != nil {
			t.Error(err)
			return
		}
		add, err := cls.Bind("Add", reflect.TypeOf(int64(0)), voidType, false)
		if err != nil {
			t.Error(err)
			return
		}
		rt.Call(th, gp, "Add", add.WireArgs(reflect.ValueOf(int64(21))), nil)
		rt.Call(th, gp, "Add", add.WireArgs(reflect.ValueOf(int64(21))), nil)

		tot, err := cls.Bind("Total", voidType, reflect.TypeOf(int64(0)), false)
		if err != nil {
			t.Error(err)
			return
		}
		ret := tot.NewRetArg()
		rt.Call(th, gp, "Total", nil, ret)
		tot.LoadRet(ret, reflect.ValueOf(&total).Elem())

		type scaleArgs = struct {
			V []float64
			K float64
		}
		sc, err := cls.Bind("Scale", reflect.TypeOf(scaleArgs{}), reflect.TypeOf([]float64(nil)), false)
		if err != nil {
			t.Error(err)
			return
		}
		sret := sc.NewRetArg()
		rt.Call(th, gp, "Scale", sc.WireArgs(reflect.ValueOf(scaleArgs{V: []float64{1, 2}, K: 10})), sret)
		sc.LoadRet(sret, reflect.ValueOf(&scaled).Elem())
	})
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 42 {
		t.Fatalf("total = %d, want 42", total)
	}
	if len(scaled) != 2 || scaled[0] != 10 || scaled[1] != 20 {
		t.Fatalf("scaled = %v", scaled)
	}
}

// badOpts misdeclares RMIOptions (wrong return type): deriving must fail
// rather than silently dropping the Threaded/Atomic flags.
type badOpts struct{}

func (b *badOpts) Work(t *threads.Thread) {}

func (b *badOpts) RMIOptions() map[string]bool { return nil }

func TestMisdeclaredRMIOptions(t *testing.T) {
	_, err := DeriveClass(reflect.TypeOf((*badOpts)(nil)))
	if err == nil || !strings.Contains(err.Error(), "OptionsProvider") {
		t.Fatalf("misdeclared RMIOptions: %v", err)
	}
}

func TestDeriveErrors(t *testing.T) {
	type plain struct{ X int64 }
	if _, err := DeriveClass(reflect.TypeOf((*plain)(nil))); err == nil ||
		!strings.Contains(err.Error(), "no RMI methods") {
		t.Errorf("no-method struct: %v", err)
	}
	if _, err := DeriveClass(reflect.TypeOf(plain{})); err == nil {
		t.Error("non-pointer type accepted")
	}
}

func TestBindErrors(t *testing.T) {
	cls, err := DeriveClass(reflect.TypeOf((*calc)(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cls.Method("Sub"); err == nil || !strings.Contains(err.Error(), "Add, Scale, Total") {
		t.Errorf("unknown method error should list methods: %v", err)
	}
	if _, err := cls.Bind("Add", reflect.TypeOf("x"), voidType, false); err == nil ||
		!strings.Contains(err.Error(), "argument type mismatch") {
		t.Errorf("wrong arg type: %v", err)
	}
	if _, err := cls.Bind("Add", reflect.TypeOf(int64(0)), reflect.TypeOf(int64(0)), false); err == nil ||
		!strings.Contains(err.Error(), "returns nothing") {
		t.Errorf("ret for void method: %v", err)
	}
	if _, err := cls.Bind("Total", voidType, reflect.TypeOf(3.0), false); err == nil ||
		!strings.Contains(err.Error(), "result type mismatch") {
		t.Errorf("wrong ret type: %v", err)
	}
	if _, err := cls.Bind("Total", voidType, nil, true); err == nil ||
		!strings.Contains(err.Error(), "one-way") {
		t.Errorf("one-way to returning method: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	m := machine.New(machine.SP1997(), 1)
	rt := core.NewRuntime(m)
	typ := reflect.TypeOf((*calc)(nil))
	if _, err := Register(rt, typ); err != nil {
		t.Fatal(err)
	}
	if _, err := Register(rt, typ); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate register: %v", err)
	}
	if _, err := Lookup(rt, reflect.TypeOf((*struct{ X int64 })(nil))); err == nil {
		t.Error("lookup of unregistered type succeeded")
	}
}

// TestCodecAppendToAllocFree pins the collective hot path's allocation
// budget: encoding an addressable non-slice value into a reused buffer and
// decoding it back must not allocate — the argument frames recycle through
// the codec pool and the buffer is caller-owned.
func TestCodecAppendToAllocFree(t *testing.T) {
	type point struct {
		X, Y int64
		W    float64
	}
	c, err := CodecFor(reflect.TypeOf(point{}))
	if err != nil {
		t.Fatal(err)
	}
	in := point{X: 7, Y: -3, W: 2.5}
	src := reflect.ValueOf(&in).Elem()
	buf := c.AppendTo(src, nil)
	var out point
	dst := reflect.ValueOf(&out).Elem()
	c.Decode(buf, dst)
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		buf = c.AppendTo(src, buf[:0])
	}); allocs > 0 {
		t.Fatalf("AppendTo into reused buffer allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		c.Decode(buf, dst)
	}); allocs > 0 {
		t.Fatalf("Decode of pooled-frame plan allocates %.1f/op, want 0", allocs)
	}
}

// TestCodecAppendToSliceSafety: a slice-carrying type still round-trips
// correctly through AppendTo, the pooled encode frame does not retain the
// application's slice, and decoded values stay stable after later decodes
// (no aliasing into recycled scratch).
func TestCodecAppendToSliceSafety(t *testing.T) {
	type blob struct {
		Tag  string
		Data []byte
	}
	c, err := CodecFor(reflect.TypeOf(blob{}))
	if err != nil {
		t.Fatal(err)
	}
	one := blob{Tag: "one", Data: []byte{1, 2, 3, 4}}
	bufOne := c.AppendTo(reflect.ValueOf(&one).Elem(), nil)
	var gotOne blob
	c.Decode(bufOne, reflect.ValueOf(&gotOne).Elem())

	// A second encode/decode cycle through the same codec must not disturb
	// the first decoded value.
	two := blob{Tag: "two", Data: []byte{9, 9, 9, 9, 9, 9}}
	bufTwo := c.AppendTo(reflect.ValueOf(&two).Elem(), nil)
	var gotTwo blob
	c.Decode(bufTwo, reflect.ValueOf(&gotTwo).Elem())

	if gotOne.Tag != "one" || string(gotOne.Data) != string([]byte{1, 2, 3, 4}) {
		t.Fatalf("first decode disturbed by second: %+v", gotOne)
	}
	if gotTwo.Tag != "two" || len(gotTwo.Data) != 6 {
		t.Fatalf("second decode wrong: %+v", gotTwo)
	}
}

// BenchmarkCodecAppendTo is the benchmem gate companion of the alloc test:
// CI runs it with -benchmem so a pooling regression is visible as a
// non-zero allocs/op in the throughput trajectory.
func BenchmarkCodecAppendTo(b *testing.B) {
	type point struct {
		X, Y int64
		W    float64
	}
	c, err := CodecFor(reflect.TypeOf(point{}))
	if err != nil {
		b.Fatal(err)
	}
	in := point{X: 7, Y: -3, W: 2.5}
	src := reflect.ValueOf(&in).Elem()
	var out point
	dst := reflect.ValueOf(&out).Elem()
	buf := c.AppendTo(src, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendTo(src, buf[:0])
		c.Decode(buf, dst)
	}
}
