package rmigen

import (
	"fmt"
	"reflect"
	"slices"
	"sync"

	"repro/internal/core"
)

// Codec marshals single values of a supported RMI type (int, int64,
// float64, string, []byte, []float64, or a struct of those) to and from the
// exact wire bytes the RMI argument path produces. The collective layer and
// Dist arrays use it to move typed payloads over the untyped byte-level
// plumbing without inventing a second wire format.
//
// The hot entry points are AppendTo and Decode: argument frames (the []Arg
// scratch a marshal runs through) recycle through a per-codec pool, and
// AppendTo writes into a caller-provided buffer, so a warm
// encode-into-reused-buffer of an addressable value performs zero
// allocations. Encode remains as the convenience form that allocates its
// result.
type Codec struct {
	typ reflect.Type
	p   *valuePlan

	// frames pools []Arg scratch. Encoding may always use it (the bytes are
	// copied out before release; slice/string references are cleared so the
	// pool does not retain payloads). Decoding may use it only for plans
	// without slice kinds — a decoded slice aliases the Arg's backing array,
	// which must then escape to the caller, not back into the pool.
	frames sync.Pool
}

// codecCache memoizes plans per type; plan construction is registration-
// style reflection work that need not repeat per call.
var codecCache sync.Map // reflect.Type -> *Codec (or error, see below)

type codecErr struct{ err error }

// CodecFor compiles (or returns the cached) codec for t.
func CodecFor(t reflect.Type) (*Codec, error) {
	if v, ok := codecCache.Load(t); ok {
		if ce, bad := v.(codecErr); bad {
			return nil, ce.err
		}
		return v.(*Codec), nil
	}
	p, err := planFor(t)
	if err != nil {
		err = fmt.Errorf("type %s is not marshallable: %w", t, err)
		codecCache.Store(t, codecErr{err: err})
		return nil, err
	}
	c := &Codec{typ: t, p: p}
	// The pool holds *[]core.Arg: storing the slice header itself would box
	// it on every Put — one allocation per call, exactly what the pool is
	// here to remove.
	c.frames.New = func() any { args := c.p.newArgs(); return &args }
	codecCache.Store(t, c)
	return c, nil
}

// Type returns the Go type the codec was compiled for.
func (c *Codec) Type() reflect.Type { return c.typ }

// AppendTo serializes v (which must be of the codec's type) onto dst and
// returns the extended slice — the append-style, frame-reusing encode path.
// With an addressable v and a dst of sufficient capacity it performs no
// allocations.
func (c *Codec) AppendTo(v reflect.Value, dst []byte) []byte {
	frame := c.frames.Get().(*[]core.Arg)
	args := *frame
	c.p.store(v, args)
	size := 0
	for _, a := range args {
		size += a.WireSize()
	}
	off := len(dst)
	dst = slices.Grow(dst, size)[:off+size]
	at := off
	for _, a := range args {
		at += a.Encode(dst[at:])
	}
	if at != off+size {
		panic(fmt.Sprintf("rmigen: encode size mismatch: wrote %d of %d", at-off, size))
	}
	c.p.clearRefs(args)
	c.frames.Put(frame)
	return dst
}

// Encode serializes v into the wire bytes the equivalent []Arg would
// produce, in a freshly allocated buffer. Hot paths should prefer AppendTo
// with a reused buffer.
func (c *Codec) Encode(v reflect.Value) []byte {
	return c.AppendTo(v, nil)
}

// Decode deserializes wire bytes into the addressable value into. For plans
// without slice kinds the scratch frame recycles through the codec's pool;
// slice-carrying plans use fresh Args, because the decoded value aliases
// the Arg's backing array (it escapes to the caller).
func (c *Codec) Decode(b []byte, into reflect.Value) {
	var args []core.Arg
	var frame *[]core.Arg
	if !c.p.hasSlices {
		frame = c.frames.Get().(*[]core.Arg)
		args = *frame
	} else {
		args = c.p.newArgs()
	}
	off := 0
	for _, a := range args {
		off += a.Decode(b[off:])
	}
	if off != len(b) {
		panic(fmt.Sprintf("rmigen: %d stray bytes decoding %s", len(b)-off, c.typ))
	}
	c.p.load(into, args)
	if frame != nil {
		c.p.clearRefs(args)
		c.frames.Put(frame)
	}
}
