package rmigen

import (
	"fmt"
	"reflect"
	"sync"
)

// Codec marshals single values of a supported RMI type (int, int64,
// float64, string, []byte, []float64, or a struct of those) to and from the
// exact wire bytes the RMI argument path produces. The collective layer and
// Dist arrays use it to move typed payloads over the untyped byte-level
// plumbing without inventing a second wire format.
type Codec struct {
	typ reflect.Type
	p   *valuePlan
}

// codecCache memoizes plans per type; plan construction is registration-
// style reflection work that need not repeat per call.
var codecCache sync.Map // reflect.Type -> *Codec (or error, see below)

type codecErr struct{ err error }

// CodecFor compiles (or returns the cached) codec for t.
func CodecFor(t reflect.Type) (*Codec, error) {
	if v, ok := codecCache.Load(t); ok {
		if ce, bad := v.(codecErr); bad {
			return nil, ce.err
		}
		return v.(*Codec), nil
	}
	p, err := planFor(t)
	if err != nil {
		err = fmt.Errorf("type %s is not marshallable: %w", t, err)
		codecCache.Store(t, codecErr{err: err})
		return nil, err
	}
	c := &Codec{typ: t, p: p}
	codecCache.Store(t, c)
	return c, nil
}

// Type returns the Go type the codec was compiled for.
func (c *Codec) Type() reflect.Type { return c.typ }

// Encode serializes v (which must be of the codec's type) into the wire
// bytes the equivalent []Arg would produce.
func (c *Codec) Encode(v reflect.Value) []byte {
	args := c.p.newArgs()
	c.p.store(v, args)
	size := 0
	for _, a := range args {
		size += a.WireSize()
	}
	buf := make([]byte, size)
	off := 0
	for _, a := range args {
		off += a.Encode(buf[off:])
	}
	return buf[:off]
}

// Decode deserializes wire bytes into the addressable value into.
func (c *Codec) Decode(b []byte, into reflect.Value) {
	args := c.p.newArgs()
	off := 0
	for _, a := range args {
		off += a.Decode(b[off:])
	}
	if off != len(b) {
		panic(fmt.Sprintf("rmigen: %d stray bytes decoding %s", len(b)-off, c.typ))
	}
	c.p.load(into, args)
}
