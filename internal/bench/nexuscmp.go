package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/appstat"
	"repro/internal/apps/em3d"
	"repro/internal/apps/lu"
	"repro/internal/apps/water"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/nexus"
)

// nexusOpts builds the CC++/Nexus runtime options for a machine.
func nexusOpts(m *machine.Machine) core.Options {
	return core.Options{Transport: nexus.New(m)}
}

// NexusRow compares one application under CC++/ThAM vs CC++/Nexus.
type NexusRow struct {
	App          string          `json:"app"`
	ThAM         *appstat.Result `json:"tham"`
	Nexus        *appstat.Result `json:"nexus"`
	PaperSpeedup string          `json:"paper_speedup"`
}

// RunNexusCompare reproduces §6's "Comparison with CC++/Nexus": the same
// CC++ applications over both transports. Sizes follow the scale but stay on
// the small side — the point is the order-of-magnitude ratio, which is
// insensitive to size in the communication-bound programs.
func RunNexusCompare(cfg machine.Config, sc Scale) []NexusRow {
	var rows []NexusRow

	em3dP := em3d.Params{
		GraphNodes: sc.EM3DNodes / 2, Degree: sc.EM3DDegree, Procs: 4,
		RemotePct: 100, Iters: 2, Seed: 1,
	}
	for _, variant := range em3d.Variants() {
		base := em3d.Build(em3dP)
		th, err := em3d.RunCCXX(cfg, base.Clone(), variant, nil)
		if err != nil {
			panic(err)
		}
		nx, err := em3d.RunCCXX(cfg, base.Clone(), variant, nexusOpts)
		if err != nil {
			panic(err)
		}
		name := "em3d-" + string(variant)
		rows = append(rows, NexusRow{App: name, ThAM: th, Nexus: nx, PaperSpeedup: paperNexus[name]})
	}

	waterP := water.Params{N: sc.NexusWaterSize, Procs: 4, Steps: 1, Seed: 3}
	for _, variant := range water.Variants() {
		base := water.Build(waterP)
		th, err := water.RunCCXX(cfg, base.Clone(), variant, nil)
		if err != nil {
			panic(err)
		}
		nx, err := water.RunCCXX(cfg, base.Clone(), variant, nexusOpts)
		if err != nil {
			panic(err)
		}
		rows = append(rows, NexusRow{App: "water-" + string(variant), ThAM: th, Nexus: nx,
			PaperSpeedup: paperNexus["water"]})
	}

	luP := lu.Params{N: sc.LUN / 2, B: sc.LUB, Procs: 4, Seed: 5}
	if luP.N < 2*luP.B {
		luP.N = 2 * luP.B
	}
	{
		base := lu.Build(luP)
		th, err := lu.RunCCXX(cfg, base.Clone(), nil)
		if err != nil {
			panic(err)
		}
		nx, err := lu.RunCCXX(cfg, base.Clone(), nexusOpts)
		if err != nil {
			panic(err)
		}
		rows = append(rows, NexusRow{App: "lu", ThAM: th, Nexus: nx, PaperSpeedup: paperNexus["lu"]})
	}
	return rows
}

// FormatNexus renders the comparison table.
func FormatNexus(rows []NexusRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6 comparison: CC++/ThAM vs CC++/Nexus (speedup of ThAM)\n")
	fmt.Fprintf(&b, "%-16s | %12s %12s | %8s | %s\n", "app", "ThAM", "Nexus", "speedup", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s | %12v %12v | %7.1fx | %s\n",
			r.App, r.ThAM.Elapsed, r.Nexus.Elapsed,
			float64(r.Nexus.Elapsed)/float64(r.ThAM.Elapsed), r.PaperSpeedup)
	}
	return b.String()
}
