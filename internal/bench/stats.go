package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/metrics"
)

// HistRow is one latency (or size) histogram rendered for a report: count,
// log-bucket percentiles, observed max, and mean. Durations are nanoseconds.
type HistRow struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
	Max   int64 `json:"max"`
	Mean  int64 `json:"mean"`
}

// GaugeRow is one gauge rendered for a report: last sampled level and
// high-water mark.
type GaugeRow struct {
	Last int64 `json:"last"`
	Max  int64 `json:"max"`
}

// StatsRow is one scope of the observability experiment: the machine-wide
// merge, or one shard's contribution. Counter/gauge/histogram maps are
// name-keyed (Go marshals map keys sorted, so the JSON is deterministic) and
// carry only non-zero instruments.
type StatsRow struct {
	// Scope is "machine" for the merged row, "shard<i>" for per-shard rows.
	Scope string `json:"scope"`
	Nodes int    `json:"nodes"`
	// BusyNS and Buckets are the accounting side: charged time, total and per
	// category (virtual time on sim, modelled charges on live).
	BusyNS  int64            `json:"busy_ns"`
	Buckets map[string]int64 `json:"buckets_ns,omitempty"`
	// Counters are the machine.Acct event counters (RMIs, handlers, bytes).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Wall, Gauges and Hists are the wall-clock metrics registry: message
	// plane counters, queue-depth gauges, and latency/size histograms with
	// percentiles. Empty on the sim backend, which has no wall-clock story.
	Wall   map[string]int64    `json:"wall_counters,omitempty"`
	Gauges map[string]GaugeRow `json:"gauges,omitempty"`
	Hists  map[string]HistRow  `json:"hists,omitempty"`
}

// statsRow renders one scope.
func statsRow(scope string, nodes int, acct machine.Snapshot, met metrics.Snapshot) StatsRow {
	row := StatsRow{Scope: scope, Nodes: nodes, BusyNS: int64(acct.Busy())}
	for _, c := range machine.Categories() {
		if d := acct.Get(c); d != 0 {
			if row.Buckets == nil {
				row.Buckets = map[string]int64{}
			}
			row.Buckets[c.String()] = int64(d)
		}
	}
	for c, v := range acct.Counters {
		if v != 0 {
			if row.Counters == nil {
				row.Counters = map[string]int64{}
			}
			row.Counters[machine.Cnt(c).String()] = v
		}
	}
	for _, c := range metrics.Counters() {
		if v := met.Counter(c); v != 0 {
			if row.Wall == nil {
				row.Wall = map[string]int64{}
			}
			row.Wall[c.String()] = v
		}
	}
	for _, g := range metrics.Gauges() {
		if gs := met.Gauge(g); gs.Max != 0 || gs.Last != 0 {
			if row.Gauges == nil {
				row.Gauges = map[string]GaugeRow{}
			}
			row.Gauges[g.String()] = GaugeRow{Last: gs.Last, Max: gs.Max}
		}
	}
	for _, h := range metrics.Hists() {
		hs := met.Hist(h)
		if hs.Count == 0 {
			continue
		}
		if row.Hists == nil {
			row.Hists = map[string]HistRow{}
		}
		row.Hists[h.String()] = HistRow{
			Count: hs.Count, P50: hs.P50(), P99: hs.P99(), P999: hs.P999(),
			Max: hs.Max, Mean: hs.Mean(),
		}
	}
	return row
}

// StatsRows renders a machine-wide ClusterStats as report rows: the merged
// "machine" row first, then one row per shard (only when the machine actually
// spans several).
func StatsRows(cs machine.ClusterStats) []StatsRow {
	nodes := 0
	for _, ss := range cs.Shards {
		nodes += len(ss.Nodes)
	}
	rows := []StatsRow{statsRow("machine", nodes, cs.Acct, cs.Metrics)}
	if len(cs.Shards) > 1 {
		for _, ss := range cs.Shards {
			rows = append(rows, statsRow(fmt.Sprintf("shard%d", ss.Shard), len(ss.Nodes), ss.Acct, ss.Metrics))
		}
	}
	return rows
}

// FormatStats renders the observability rows: per-scope latency percentiles
// and the most load-bearing counters.
func FormatStats(rows []StatsRow, backend string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Machine-wide observability (%s backend)\n", backend)
	for _, r := range rows {
		fmt.Fprintf(&b, "%s (%d nodes): busy %v", r.Scope, r.Nodes, time.Duration(r.BusyNS).Round(time.Microsecond))
		for _, name := range sortedKeys(r.Counters) {
			switch name {
			case "core.rmi", "am.handlers", "am.msg.short", "am.msg.bulk":
				fmt.Fprintf(&b, "  %s=%d", name, r.Counters[name])
			}
		}
		b.WriteByte('\n')
		for _, name := range sortedKeys(r.Wall) {
			fmt.Fprintf(&b, "  %s=%d", name, r.Wall[name])
		}
		if len(r.Wall) > 0 {
			b.WriteByte('\n')
		}
		for _, name := range sortedKeys(r.Hists) {
			h := r.Hists[name]
			if strings.HasSuffix(name, ".ns") {
				fmt.Fprintf(&b, "  %-20s n=%-8d p50=%-10v p99=%-10v p999=%-10v max=%v\n",
					name, h.Count, time.Duration(h.P50), time.Duration(h.P99),
					time.Duration(h.P999), time.Duration(h.Max))
			} else {
				fmt.Fprintf(&b, "  %-20s n=%-8d p50=%-10d p99=%-10d p999=%-10d max=%d\n",
					name, h.Count, h.P50, h.P99, h.P999, h.Max)
			}
		}
	}
	fmt.Fprintf(&b, "(counters merge every shard of the machine; percentiles are log-bucket upper bounds)\n")
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
