// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§6), each reproducing the corresponding rows or
// bar groups, plus the §6 CC++/Nexus comparison and ablations of the §4
// design choices.
//
// Every runner takes a Scale so the full paper configuration and a quick
// CI-sized configuration share all code paths. Absolute times come from the
// calibrated virtual machine model; EXPERIMENTS.md records paper-vs-measured
// for every row.
package bench

import "repro/internal/machine"

// Scale sizes the experiments.
type Scale struct {
	Name string
	// MicroIters is the averaging count for Table 4 (paper: 10000).
	MicroIters int
	// EM3DIters is EM3D update steps per run (the paper's per-edge numbers
	// are iteration-invariant in steady state).
	EM3DIters int
	// EM3DNodes and EM3DDegree size the graph (paper: 800 / 20).
	EM3DNodes, EM3DDegree int
	// WaterSizes are molecule counts (paper: 64 and 512).
	WaterSizes []int
	// WaterSteps is simulation steps per Water run.
	WaterSteps int
	// LUN and LUB are matrix and block size (paper: 512 / 16).
	LUN, LUB int
	// NexusWaterSize keeps the Nexus comparison tractable.
	NexusWaterSize int
}

// Full returns the paper's experiment configuration (Table 4 averaging is
// reduced from 10000 to 2000 iterations: the simulator is deterministic, so
// additional averaging adds nothing but time).
func Full() Scale {
	return Scale{
		Name:       "full",
		MicroIters: 2000,
		EM3DIters:  10, EM3DNodes: 800, EM3DDegree: 20,
		WaterSizes: []int{64, 512}, WaterSteps: 1,
		LUN: 512, LUB: 16,
		NexusWaterSize: 64,
	}
}

// Quick returns a CI-sized configuration exercising every code path.
func Quick() Scale {
	return Scale{
		Name:       "quick",
		MicroIters: 200,
		EM3DIters:  3, EM3DNodes: 160, EM3DDegree: 8,
		WaterSizes: []int{16, 48}, WaterSteps: 1,
		LUN: 64, LUB: 8,
		NexusWaterSize: 16,
	}
}

// Cfg returns the machine profile all experiments run on.
func Cfg() machine.Config { return machine.SP1997() }
