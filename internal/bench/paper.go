package bench

// paperRef holds the paper's measured values for side-by-side printing.
type paperRef struct {
	cc string // CC++ total (µs) as reported in Table 4
	sc string // Split-C total (µs)
}

// paperTable4 is Table 4 of the paper (totals, µs).
var paperTable4 = map[string]paperRef{
	"0-Word Simple":               {cc: "67", sc: "-"},
	"0-Word":                      {cc: "77", sc: "-"},
	"1-Word":                      {cc: "94", sc: "-"},
	"2-Word":                      {cc: "95", sc: "-"},
	"0-Word Threaded":             {cc: "87", sc: "-"},
	"0-Word Atomic":               {cc: "88", sc: "56"},
	"GP 2-Word R/W":               {cc: "92", sc: "57"},
	"BulkWrite 40-Word":           {cc: "154", sc: "74"},
	"BulkRead 40-Word":            {cc: "177", sc: "75"},
	"Prefetch 20-Word (per elem)": {cc: "35.4", sc: "12.1"},
}

// paperEM3DRatio is Figure 5's CC++/Split-C per-edge ratio at 100% remote
// edges, per variant (base converges to ~2, ghost to ~2.5, bulk to ~1).
var paperEM3DRatio = map[string]float64{
	"base":  2.0,
	"ghost": 2.5,
	"bulk":  1.1,
}

// paperWaterGap is Figure 6's CC++/Split-C execution-time ratios.
var paperWaterGap = map[string]float64{
	"atomic/64":    2.6,
	"atomic/512":   5.6,
	"prefetch/64":  2.5, // 0.10 / 0.04
	"prefetch/512": 3.5,
}

// paperLUGap is Figure 6's cc-lu / sc-lu ratio.
const paperLUGap = 3.6

// paperNexus summarizes §6's "Comparison with CC++/Nexus": CC++/ThAM is 5-35x
// faster than CC++/Nexus depending on the communication/computation ratio.
var paperNexus = map[string]string{
	"em3d-base":  "35x",
	"em3d-ghost": "29x",
	"em3d-bulk":  "10x",
	"water":      "16-22x (64 mol); 5-6x (512 mol)",
	"lu":         "5-6x",
}

// paperTable1 is Table 1: source-code size of the two CC++ runtime
// implementations (lines of .C/.H code).
var paperTable1 = []struct {
	Component string
	CLines    int
	HLines    int
}{
	{"Nexus v3.0", 39226, 6552},
	{"CC++ rt (w/Nexus)", 1936, 1366},
	{"ThAM", 1155, 726},
	{"CC++ rt (w/ThAM)", 2682, 1346},
}
