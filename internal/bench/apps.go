package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/appstat"
	"repro/internal/apps/em3d"
	"repro/internal/apps/lu"
	"repro/internal/apps/water"
	"repro/internal/machine"
)

// EM3DRow is one bar pair of Figure 5: a (variant, remote%) cell with both
// language versions.
type EM3DRow struct {
	Variant   em3d.Variant    `json:"variant"`
	RemotePct int             `json:"remote_pct"`
	SC        *appstat.Result `json:"sc"`
	CC        *appstat.Result `json:"cc"`
}

// RemotePcts are the paper's remote-edge fractions.
var RemotePcts = []int{10, 40, 70, 100}

// RunEM3D reproduces Figure 5.
func RunEM3D(cfg machine.Config, sc Scale) []EM3DRow {
	var rows []EM3DRow
	for _, variant := range em3d.Variants() {
		for _, pct := range RemotePcts {
			p := em3d.Params{
				GraphNodes: sc.EM3DNodes, Degree: sc.EM3DDegree, Procs: 4,
				RemotePct: pct, Iters: sc.EM3DIters, Seed: 1,
			}
			base := em3d.Build(p)
			scRes, err := em3d.RunSplitC(cfg, base.Clone(), variant)
			if err != nil {
				panic(err)
			}
			ccRes, err := em3d.RunCCXX(cfg, base.Clone(), variant, nil)
			if err != nil {
				panic(err)
			}
			rows = append(rows, EM3DRow{Variant: variant, RemotePct: pct, SC: scRes, CC: ccRes})
		}
	}
	return rows
}

// FormatEM3D renders Figure 5: per-edge times and the component breakdown of
// each CC++ bar normalized against its Split-C partner.
func FormatEM3D(rows []EM3DRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: EM3D per-edge execution time, normalized against Split-C\n")
	fmt.Fprintf(&b, "%-7s %5s | %10s %10s %6s | breakdown of CC++ bar (fractions of Split-C total)\n",
		"variant", "rem%", "sc/edge", "cc/edge", "ratio")
	for _, r := range rows {
		ratio := r.CC.Ratio(r.SC)
		fmt.Fprintf(&b, "%-7s %5d | %10v %10v %6.2f | %s\n",
			r.Variant, r.RemotePct, r.SC.PerUnit, r.CC.PerUnit, ratio, r.CC.BreakdownRow(r.SC))
	}
	fmt.Fprintf(&b, "paper at 100%% remote: base→%.1fx  ghost→%.1fx  bulk→%.1fx\n",
		paperEM3DRatio["base"], paperEM3DRatio["ghost"], paperEM3DRatio["bulk"])
	return b.String()
}

// WaterRow is one bar pair of Figure 6's Water groups.
type WaterRow struct {
	Variant em3dSafeVariant `json:"variant"`
	N       int             `json:"n"`
	SC      *appstat.Result `json:"sc"`
	CC      *appstat.Result `json:"cc"`
}

// em3dSafeVariant avoids an import cycle on names only.
type em3dSafeVariant = water.Variant

// RunWater reproduces the Water half of Figure 6.
func RunWater(cfg machine.Config, sc Scale) []WaterRow {
	var rows []WaterRow
	for _, variant := range water.Variants() {
		for _, n := range sc.WaterSizes {
			p := water.Params{N: n, Procs: 4, Steps: sc.WaterSteps, Seed: 3}
			base := water.Build(p)
			scRes, err := water.RunSplitC(cfg, base.Clone(), variant)
			if err != nil {
				panic(err)
			}
			ccRes, err := water.RunCCXX(cfg, base.Clone(), variant, nil)
			if err != nil {
				panic(err)
			}
			rows = append(rows, WaterRow{Variant: variant, N: n, SC: scRes, CC: ccRes})
		}
	}
	return rows
}

// FormatWater renders the Water half of Figure 6.
func FormatWater(rows []WaterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (Water): execution time, normalized against Split-C\n")
	fmt.Fprintf(&b, "%-9s %5s | %12s %12s %6s %8s | breakdown of CC++ bar\n",
		"variant", "N", "sc", "cc", "ratio", "paper")
	for _, r := range rows {
		key := fmt.Sprintf("%s/%d", r.Variant, r.N)
		paper := "-"
		if v, ok := paperWaterGap[key]; ok {
			paper = fmt.Sprintf("%.1fx", v)
		}
		fmt.Fprintf(&b, "%-9s %5d | %12v %12v %6.2f %8s | %s\n",
			r.Variant, r.N, r.SC.Elapsed, r.CC.Elapsed, r.CC.Ratio(r.SC), paper, r.CC.BreakdownRow(r.SC))
	}
	return b.String()
}

// LURow is the LU bar pair of Figure 6.
type LURow struct {
	N  int             `json:"n"`
	B  int             `json:"b"`
	SC *appstat.Result `json:"sc"`
	CC *appstat.Result `json:"cc"`
}

// RunLU reproduces the LU half of Figure 6.
func RunLU(cfg machine.Config, sc Scale) LURow {
	p := lu.Params{N: sc.LUN, B: sc.LUB, Procs: 4, Seed: 5}
	base := lu.Build(p)
	scRes, err := lu.RunSplitC(cfg, base.Clone())
	if err != nil {
		panic(err)
	}
	ccRes, err := lu.RunCCXX(cfg, base.Clone(), nil)
	if err != nil {
		panic(err)
	}
	return LURow{N: p.N, B: p.B, SC: scRes, CC: ccRes}
}

// FormatLU renders the LU half of Figure 6.
func FormatLU(r LURow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (LU %dx%d, %dx%d blocks): execution time, normalized against Split-C\n",
		r.N, r.N, r.B, r.B)
	fmt.Fprintf(&b, "sc-lu %v  cc-lu %v  ratio %.2f (paper: %.1fx)\n",
		r.SC.Elapsed, r.CC.Elapsed, r.CC.Ratio(r.SC), paperLUGap)
	fmt.Fprintf(&b, "cc-lu breakdown: %s\n", r.CC.BreakdownRow(r.SC))
	return b.String()
}
