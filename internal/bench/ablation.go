package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// AblationRow measures the warm null-RMI and warm 20-double bulk RMI under
// one runtime configuration, quantifying the §4 design choices.
type AblationRow struct {
	Config   string        `json:"config"`
	NullRMI  time.Duration `json:"null_rmi"`
	BulkRMI  time.Duration `json:"bulk_rmi"`
	ColdRMIs int64         `json:"cold_rmis"`
	Allocs   int64         `json:"allocs"`
}

// RunAblations toggles the paper's §4 optimizations one at a time:
//
//   - stub caching off: every RMI carries the method name and resolves
//     remotely (the cold path, always);
//   - persistent buffers off: every invocation pays the staging copy from
//     the static buffer area into a fresh R-buffer;
//   - spin senders: blocking calls poll inline instead of handing off to the
//     polling thread (trading thread switches for CPU occupancy).
func RunAblations(cfg machine.Config, sc Scale) []AblationRow {
	iters := sc.MicroIters / 2
	if iters < 50 {
		iters = 50
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"tuned (paper §4)", core.Options{}},
		{"no stub cache", core.Options{DisableStubCache: true}},
		{"no persistent bufs", core.Options{DisablePersistentBuffers: true}},
		{"spin senders", core.Options{SpinSenders: true}},
		{"no cache + no bufs", core.Options{DisableStubCache: true, DisablePersistentBuffers: true}},
	}
	var rows []AblationRow
	for _, c := range configs {
		rows = append(rows, runAblation(cfg, iters, c.name, c.opts))
	}
	// Interrupt-driven reception — the paper's rejected alternative at the
	// 1997 software-interrupt cost, and its projected future ("reducing the
	// cost of software interrupts ... eliminates the need for the polling
	// thread") at a cheap-interrupt cost.
	rows = append(rows, runAblation(cfg, iters, "interrupts @60µs", core.Options{InterruptDriven: true}))
	cheap := cfg
	cheap.InterruptCost = 2 * time.Microsecond
	rows = append(rows, runAblation(cheap, iters, "interrupts @2µs", core.Options{InterruptDriven: true}))
	return rows
}

func runAblation(cfg machine.Config, iters int, name string, opts core.Options) AblationRow {
	m := machine.New(cfg, 2)
	rt := core.NewRuntimeOpts(m, opts)
	rt.RegisterClass(benchClass())
	gp := rt.CreateObject(1, "Bench")
	row := AblationRow{Config: name}
	arr := make([]float64, 20)
	rt.OnNode(0, func(t *threads.Thread) {
		rt.Call(t, gp, "foo", nil, nil) // settle cold path when caching is on
		rt.Call(t, gp, "put", []core.Arg{&core.F64Slice{V: arr}}, nil)

		start := t.Now()
		for i := 0; i < iters; i++ {
			rt.Call(t, gp, "foo", nil, nil)
		}
		row.NullRMI = time.Duration(t.Now()-start) / time.Duration(iters)

		start = t.Now()
		for i := 0; i < iters; i++ {
			rt.Call(t, gp, "put", []core.Arg{&core.F64Slice{V: arr}}, nil)
		}
		row.BulkRMI = time.Duration(t.Now()-start) / time.Duration(iters)
	})
	if err := rt.Run(); err != nil {
		panic(err)
	}
	row.ColdRMIs = m.Node(0).Acct.Counter(machine.CntRMICold)
	row.Allocs, _ = rt.BufStats()
	return row
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations of the §4 design choices (warm per-RMI times)\n")
	fmt.Fprintf(&b, "%-20s | %10s %10s | %9s %9s\n", "configuration", "null RMI", "bulk RMI", "cold RMIs", "R-allocs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s | %10v %10v | %9d %9d\n", r.Config, r.NullRMI, r.BulkRMI, r.ColdRMIs, r.Allocs)
	}
	return b.String()
}
