package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestMicroShape verifies Table 4's qualitative structure at quick scale —
// the orderings the paper's discussion rests on.
func TestMicroShape(t *testing.T) {
	rows := RunMicro(Cfg(), Quick())
	byName := map[string]MicroRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}

	simple := byName["0-Word Simple"]
	zero := byName["0-Word"]
	threaded := byName["0-Word Threaded"]
	gp := byName["GP 2-Word R/W"]
	bw := byName["BulkWrite 40-Word"]
	br := byName["BulkRead 40-Word"]
	pf := byName["Prefetch 20-Word (per elem)"]

	// Simple has no thread switches; the standard path has some; the
	// threaded path creates a thread.
	if simple.CCYield != 0 {
		t.Errorf("0-Word Simple yields = %v, want 0", simple.CCYield)
	}
	if zero.CCYield < 1 {
		t.Errorf("0-Word yields = %v, want >= 1", zero.CCYield)
	}
	if threaded.CCCreate < 1 {
		t.Errorf("0-Word Threaded creates = %v, want >= 1", threaded.CCCreate)
	}
	if !(simple.CCTotal < zero.CCTotal && zero.CCTotal < threaded.CCTotal) {
		t.Errorf("ordering broken: simple %v, 0-word %v, threaded %v",
			simple.CCTotal, zero.CCTotal, threaded.CCTotal)
	}
	// The 0-word simple RMI sits a few µs above the raw 55 µs AM RTT and
	// well below the 88 µs MPL RTT (the paper's headline claim).
	mpl := MPLReferenceRTT(Cfg(), 200)
	if simple.CCTotal <= Cfg().ShortRTT() || simple.CCTotal >= mpl {
		t.Errorf("0-Word Simple %v not in (AM %v, MPL %v)", simple.CCTotal, Cfg().ShortRTT(), mpl)
	}
	// Bulk reads cost more than bulk writes (return-path double copy).
	if br.CCTotal <= bw.CCTotal {
		t.Errorf("bulk read %v not slower than bulk write %v", br.CCTotal, bw.CCTotal)
	}
	// Split-C beats CC++ wherever both exist.
	for _, r := range []MicroRow{byName["0-Word Atomic"], gp, bw, br, pf} {
		if !r.HasSC {
			t.Errorf("%s missing Split-C measurement", r.Name)
			continue
		}
		if r.SCTotal >= r.CCTotal {
			t.Errorf("%s: split-c %v not faster than cc++ %v", r.Name, r.SCTotal, r.CCTotal)
		}
	}
	// Prefetch per-element lands in the paper's band: CC++ ~2-4x Split-C.
	ratio := float64(pf.CCTotal) / float64(pf.SCTotal)
	if ratio < 1.5 || ratio > 5 {
		t.Errorf("prefetch cc/sc per-element ratio %.2f outside [1.5,5]", ratio)
	}
}

func TestEM3DShape(t *testing.T) {
	rows := RunEM3D(Cfg(), Quick())
	if len(rows) != 12 {
		t.Fatalf("want 12 cells (3 variants x 4 pcts), got %d", len(rows))
	}
	get := func(v string, pct int) EM3DRow {
		for _, r := range rows {
			if string(r.Variant) == v && r.RemotePct == pct {
				return r
			}
		}
		t.Fatalf("missing cell %s/%d", v, pct)
		return EM3DRow{}
	}
	for _, pct := range RemotePcts {
		base, ghost, bulk := get("base", pct), get("ghost", pct), get("bulk", pct)
		// Optimizations help in both languages.
		if !(ghost.SC.Elapsed < base.SC.Elapsed && bulk.SC.Elapsed < ghost.SC.Elapsed) {
			t.Errorf("pct %d: sc variant ordering broken", pct)
		}
		if !(ghost.CC.Elapsed < base.CC.Elapsed && bulk.CC.Elapsed < ghost.CC.Elapsed) {
			t.Errorf("pct %d: cc variant ordering broken", pct)
		}
		// CC++ is slower but within the paper's competitive band.
		for _, r := range []EM3DRow{base, ghost, bulk} {
			ratio := r.CC.Ratio(r.SC)
			if ratio < 1.0 || ratio > 4.0 {
				t.Errorf("%s/%d: ratio %.2f outside [1,4]", r.Variant, pct, ratio)
			}
		}
	}
	// Bulk is the closest variant at full remoteness (paper: no significant
	// difference in em3d-bulk).
	b100, g100 := get("bulk", 100), get("ghost", 100)
	if b100.CC.Ratio(b100.SC) >= g100.CC.Ratio(g100.SC) {
		t.Errorf("bulk ratio %.2f not below ghost ratio %.2f",
			b100.CC.Ratio(b100.SC), g100.CC.Ratio(g100.SC))
	}
}

func TestWaterShape(t *testing.T) {
	rows := RunWater(Cfg(), Quick())
	if len(rows) != 4 {
		t.Fatalf("want 4 cells, got %d", len(rows))
	}
	for _, r := range rows {
		ratio := r.CC.Ratio(r.SC)
		if ratio < 1.0 || ratio > 8.0 {
			t.Errorf("water %s/%d: ratio %.2f outside [1,8]", r.Variant, r.N, ratio)
		}
	}
	// Prefetching helps both languages (paper: 60% improvement at 64).
	var atomicT, prefT time.Duration
	for _, r := range rows {
		if r.N != Quick().WaterSizes[0] {
			continue
		}
		if string(r.Variant) == "atomic" {
			atomicT = r.CC.Elapsed
		} else {
			prefT = r.CC.Elapsed
		}
	}
	if prefT >= atomicT {
		t.Errorf("cc++ prefetch %v not faster than atomic %v", prefT, atomicT)
	}
}

func TestLUShape(t *testing.T) {
	r := RunLU(Cfg(), Quick())
	ratio := r.CC.Ratio(r.SC)
	if ratio < 1.2 || ratio > 8 {
		t.Errorf("lu ratio %.2f outside [1.2,8] (paper: 3.6)", ratio)
	}
	// Synchronization and runtime overhead are visible gap components.
	if r.CC.Fraction(machine.CatThreadSync) <= 0 || r.CC.Fraction(machine.CatRuntime) <= 0 {
		t.Error("cc-lu missing sync/runtime components")
	}
}

func TestNexusCompareShape(t *testing.T) {
	rows := RunNexusCompare(Cfg(), Quick())
	if len(rows) != 6 {
		t.Fatalf("want 6 apps, got %d", len(rows))
	}
	for _, r := range rows {
		speedup := float64(r.Nexus.Elapsed) / float64(r.ThAM.Elapsed)
		if speedup < 2 {
			t.Errorf("%s: ThAM speedup %.1fx below 2x", r.App, speedup)
		}
		if speedup > 120 {
			t.Errorf("%s: ThAM speedup %.1fx implausible", r.App, speedup)
		}
	}
}

func TestAblationShape(t *testing.T) {
	rows := RunAblations(Cfg(), Quick())
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	tuned := byName["tuned (paper §4)"]
	noCache := byName["no stub cache"]
	noBufs := byName["no persistent bufs"]
	if noCache.NullRMI <= tuned.NullRMI {
		t.Errorf("stub cache off (%v) not slower than tuned (%v)", noCache.NullRMI, tuned.NullRMI)
	}
	if noCache.ColdRMIs <= tuned.ColdRMIs {
		t.Errorf("stub cache off cold RMIs %d not above tuned %d", noCache.ColdRMIs, tuned.ColdRMIs)
	}
	if noBufs.BulkRMI <= tuned.BulkRMI {
		t.Errorf("persistent bufs off (%v) not slower on bulk than tuned (%v)", noBufs.BulkRMI, tuned.BulkRMI)
	}
}

func TestIrregularCrossover(t *testing.T) {
	rows := RunIrregular(Cfg(), Quick())
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Static wins with no skew; dynamic wins at the top of the sweep; the
	// speedup is monotone enough to show a crossover.
	if rows[0].Speedup >= 1 {
		t.Errorf("dynamic won at zero skew (%.2f)", rows[0].Speedup)
	}
	last := rows[len(rows)-1]
	if last.Speedup <= 1 {
		t.Errorf("dynamic lost at skew %.2f (%.2f)", last.Skew, last.Speedup)
	}
	if last.Speedup <= rows[0].Speedup {
		t.Error("speedup did not grow with skew")
	}
}

func TestCodeSizeCountsSomething(t *testing.T) {
	rows := RunCodeSize()
	total := 0
	for _, r := range rows {
		total += r.GoLines
	}
	if total < 3000 {
		t.Fatalf("counted only %d implementation lines; source walk broken?", total)
	}
	var core CodeSizeRow
	for _, r := range rows {
		if strings.HasPrefix(r.Component, "core") {
			core = r
		}
	}
	if core.GoLines == 0 || core.PaperC != 2682 {
		t.Fatalf("core row malformed: %+v", core)
	}
}

func TestFormatters(t *testing.T) {
	// The formatters must render without panicking and include the paper
	// reference values.
	micro := FormatMicro(RunMicro(Cfg(), Quick()), MPLReferenceRTT(Cfg(), 100))
	if !strings.Contains(micro, "paperCC") || !strings.Contains(micro, "88 µs") {
		t.Error("micro table missing paper references")
	}
	cs := FormatCodeSize(RunCodeSize())
	if !strings.Contains(cs, "39226") {
		t.Error("code-size table missing Nexus line count")
	}
	ab := FormatAblations(RunAblations(Cfg(), Quick()))
	if !strings.Contains(ab, "no stub cache") {
		t.Error("ablation table incomplete")
	}
}
