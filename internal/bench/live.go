package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/transport/live"
)

// LiveRow is one line of the live-backend microbenchmark table: the same
// operations as the paper's Table 4 fast paths, but executed on real
// goroutines and timed with the wall clock instead of the calibrated
// virtual-time model.
type LiveRow struct {
	Name  string        `json:"name"`
	Iters int           `json:"iters"`
	PerOp time.Duration `json:"per_op"`
	MBps  float64       `json:"mbps"` // non-zero for bandwidth rows
}

// liveBulkWords sizes the bulk-bandwidth rows (doubles per transfer).
const liveBulkWords = 1024

// liveMachine builds an n-node machine on the live backend. Every live
// benchmark machine is tracked for the -debug-addr expvar, so a long
// wall-clock run can be sampled mid-flight.
func liveMachine(cfg machine.Config, n int) *machine.Machine {
	m := machine.NewWithBackend(cfg, n, live.New(n, live.Options{Watchdog: 2 * time.Minute}))
	track(m)
	return m
}

// liveBulkClass is a Bench variant holding a transfer buffer large enough
// for the bandwidth rows.
func liveBulkClass() *core.Class {
	return &core.Class{
		Name: "LiveBulk",
		New:  func() any { return &benchObj{arr: make([]float64, liveBulkWords)} },
		Methods: []*core.Method{
			{Name: "put", Threaded: true,
				NewArgs: func() []core.Arg { return []core.Arg{&core.F64Slice{}} },
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {
					copy(self.(*benchObj).arr, a[0].(*core.F64Slice).V)
				}},
			{Name: "get", Threaded: true,
				NewRet: func() core.Arg { return &core.F64Slice{} },
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {
					o := self.(*benchObj)
					out := r.(*core.F64Slice)
					if cap(out.V) < len(o.arr) {
						out.V = make([]float64, len(o.arr))
					}
					out.V = out.V[:len(o.arr)]
					copy(out.V, o.arr)
				}},
		},
	}
}

// measureLiveCC times body on node 0 of a fresh 2-node live-backend CC++
// rig, wall-clock per iteration.
func measureLiveCC(cfg machine.Config, cls *core.Class, target string, iters int,
	body func(rt *core.Runtime, gp core.GPtr, t *threads.Thread)) time.Duration {
	m := liveMachine(cfg, 2)
	rt := core.NewRuntime(m)
	rt.RegisterClass(cls)
	gp := rt.CreateObject(1, target)
	var per time.Duration
	rt.OnNode(0, func(t *threads.Thread) {
		// Warm the stub cache, persistent buffers, and the Go scheduler.
		for i := 0; i < 3; i++ {
			body(rt, gp, t)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			body(rt, gp, t)
		}
		per = time.Since(start) / time.Duration(iters)
	})
	if err := rt.Run(); err != nil {
		panic(err)
	}
	return per
}

// measureLiveBarrier times a full-machine barrier on nodes real goroutines.
func measureLiveBarrier(cfg machine.Config, nodes, iters int) time.Duration {
	m := liveMachine(cfg, nodes)
	rt := core.NewRuntime(m)
	bar := rt.NewBarrier(0, nodes)
	var per time.Duration
	for i := 0; i < nodes; i++ {
		i := i
		rt.OnNode(i, func(t *threads.Thread) {
			bar.Arrive(t) // warm-up round
			start := time.Now()
			for k := 0; k < iters; k++ {
				bar.Arrive(t)
			}
			if i == 0 {
				per = time.Since(start) / time.Duration(iters)
			}
		})
	}
	if err := rt.Run(); err != nil {
		panic(err)
	}
	return per
}

// RunLiveMicro measures the RMI fast paths, bulk bandwidth, and barrier on
// the live backend. Times are wall-clock and machine-dependent — the point
// is that the identical runtime stack executes on real concurrency, not that
// the numbers match the 1997 SP model.
func RunLiveMicro(cfg machine.Config, sc Scale) []LiveRow {
	iters := sc.MicroIters
	var rows []LiveRow
	add := func(name string, iters int, per time.Duration, bytes int) {
		r := LiveRow{Name: name, Iters: iters, PerOp: per}
		if bytes > 0 && per > 0 {
			r.MBps = float64(bytes) / per.Seconds() / (1 << 20)
		}
		rows = append(rows, r)
	}

	add("RMI 0-word round-trip (block)", iters,
		measureLiveCC(cfg, benchClass(), "Bench", iters,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "foo", nil, nil)
			}), 0)
	add("RMI 0-word round-trip (spin)", iters,
		measureLiveCC(cfg, benchClass(), "Bench", iters,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.CallSimple(t, gp, "foo", nil, nil)
			}), 0)
	add("RMI 1-word round-trip", iters,
		measureLiveCC(cfg, benchClass(), "Bench", iters,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "foo1", []core.Arg{&core.I64{V: 1}}, nil)
			}), 0)
	add("RMI 0-word threaded", iters,
		measureLiveCC(cfg, benchClass(), "Bench", iters,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "fooThreaded", nil, nil)
			}), 0)

	payload := make([]float64, liveBulkWords)
	for i := range payload {
		payload[i] = float64(i)
	}
	add(fmt.Sprintf("Bulk put %d KiB", liveBulkWords*8/1024), iters,
		measureLiveCC(cfg, liveBulkClass(), "LiveBulk", iters,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "put", []core.Arg{&core.F64Slice{V: payload}}, nil)
			}), liveBulkWords*8)
	ret := &core.F64Slice{V: make([]float64, liveBulkWords)}
	add(fmt.Sprintf("Bulk get %d KiB", liveBulkWords*8/1024), iters,
		measureLiveCC(cfg, liveBulkClass(), "LiveBulk", iters,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "get", nil, ret)
			}), liveBulkWords*8)

	add("Barrier (4 nodes)", iters, measureLiveBarrier(cfg, 4, iters), 0)
	return rows
}

// FormatLiveMicro renders the live-backend microbenchmark table.
func FormatLiveMicro(rows []LiveRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live backend micro-benchmarks (real goroutines, wall-clock)\n")
	fmt.Fprintf(&b, "%-32s | %8s | %10s | %10s\n", "benchmark", "iters", "per-op", "bandwidth")
	for _, r := range rows {
		bw := "-"
		if r.MBps > 0 {
			bw = fmt.Sprintf("%.0f MB/s", r.MBps)
		}
		fmt.Fprintf(&b, "%-32s | %8d | %10s | %10s\n",
			r.Name, r.Iters, r.PerOp.Round(10*time.Nanosecond), bw)
	}
	fmt.Fprintf(&b, "(same runtime stack as the calibrated tables; timings are host wall-clock,\n")
	fmt.Fprintf(&b, " not the 1997 SP model — compare shapes, not absolute values)\n")
	return b.String()
}
