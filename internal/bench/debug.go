package bench

import (
	"expvar"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
)

// curMachine is the machine the debug endpoint samples: the most recently
// built benchmark machine. Atomic because the expvar handler reads it from
// HTTP serving goroutines while experiments swap machines.
var (
	curMachine atomic.Pointer[machine.Machine]
	debugOnce  sync.Once
)

// track points the debug endpoint at m.
func track(m *machine.Machine) { curMachine.Store(m) }

// PublishDebugVars exposes the current machine's stats as the "mpmd.stats"
// expvar (served by -debug-addr alongside net/http/pprof). The dump is safe
// mid-run: accounting cells and metrics instruments are individually atomic.
// Idempotent.
func PublishDebugVars() {
	debugOnce.Do(func() {
		expvar.Publish("mpmd.stats", expvar.Func(func() any {
			m := curMachine.Load()
			if m == nil {
				return nil
			}
			s := m.LocalStats()
			return &s
		}))
	})
}
