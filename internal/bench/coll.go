package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// CollRow is one line of the collective-operations table: the log-depth
// team collectives measured end to end on either backend. On the sim
// backend times are virtual (calibrated model); on live they are host
// wall-clock.
type CollRow struct {
	Name  string        `json:"name"`
	Nodes int           `json:"nodes"`
	Iters int           `json:"iters"`
	PerOp time.Duration `json:"per_op"`
	MBps  float64       `json:"mbps"` // non-zero for bandwidth rows
}

// collBcastBytes sizes the broadcast-bandwidth row.
const collBcastBytes = 8 << 10

// collMachine builds an n-node machine on the named backend.
func collMachine(cfg machine.Config, backend string, n int) *machine.Machine {
	if backend == "live" {
		return liveMachine(cfg, n)
	}
	return machine.New(cfg, n)
}

// measureColl times body (one collective op) across iters iterations on a
// fresh n-node rig, per-op as seen by rank 0. Thread.Now reads virtual time
// on the simulator and wall time on the live backend, so the same harness
// serves both.
func measureColl(cfg machine.Config, backend string, n, iters int,
	body func(tm *coll.Team, th *threads.Thread)) time.Duration {
	m := collMachine(cfg, backend, n)
	rt := core.NewRuntime(m)
	tm := coll.For(rt).World()
	var per time.Duration
	for i := 0; i < n; i++ {
		i := i
		rt.OnNode(i, func(th *threads.Thread) {
			// Warm the stub caches on every tree edge.
			for k := 0; k < 2; k++ {
				body(tm, th)
			}
			start := th.Now()
			for k := 0; k < iters; k++ {
				body(tm, th)
			}
			if i == 0 {
				per = time.Duration(th.Now()-start) / time.Duration(iters)
			}
		})
	}
	if err := rt.Run(); err != nil {
		panic(err)
	}
	return per
}

// RunCollBench measures the team collectives — barrier, 8-node all-reduce,
// broadcast bandwidth — on the named backend ("sim" or "live").
func RunCollBench(cfg machine.Config, sc Scale, backend string) []CollRow {
	iters := sc.MicroIters
	if iters > 200 {
		iters = 200 // collectives involve every node; cap the full scale
	}
	var rows []CollRow
	add := func(name string, nodes int, per time.Duration, bytes int) {
		r := CollRow{Name: name, Nodes: nodes, Iters: iters, PerOp: per}
		if bytes > 0 && per > 0 {
			r.MBps = float64(bytes) / per.Seconds() / (1 << 20)
		}
		rows = append(rows, r)
	}

	add("Team barrier", 4,
		measureColl(cfg, backend, 4, iters, func(tm *coll.Team, th *threads.Thread) {
			tm.Barrier(th)
		}), 0)
	add("AllReduce f64 sum", 8,
		measureColl(cfg, backend, 8, iters, func(tm *coll.Team, th *threads.Thread) {
			tm.AllReduce(th, coll.EncF64(1), coll.SumF64)
		}), 0)
	payload := make([]byte, collBcastBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	add(fmt.Sprintf("Bcast %d KiB", collBcastBytes/1024), 4,
		measureColl(cfg, backend, 4, iters, func(tm *coll.Team, th *threads.Thread) {
			var data []byte
			if tm.Rank(th) == 0 {
				data = payload
			}
			tm.Bcast(th, 0, data)
		}), collBcastBytes)
	return rows
}

// FormatColl renders the collective-operations table.
func FormatColl(rows []CollRow, backend string) string {
	var b strings.Builder
	unit := "virtual time, calibrated SP model"
	if backend == "live" {
		unit = "host wall-clock"
	}
	fmt.Fprintf(&b, "Team collectives — log-depth trees over the RMI wire path (%s)\n", unit)
	fmt.Fprintf(&b, "%-24s | %6s | %8s | %10s | %10s\n", "operation", "nodes", "iters", "per-op", "bandwidth")
	for _, r := range rows {
		bw := "-"
		if r.MBps > 0 {
			bw = fmt.Sprintf("%.0f MB/s", r.MBps)
		}
		fmt.Fprintf(&b, "%-24s | %6d | %8d | %10s | %10s\n",
			r.Name, r.Nodes, r.Iters, r.PerOp.Round(10*time.Nanosecond), bw)
	}
	fmt.Fprintf(&b, "(barrier: dissemination, ceil(log2 n) rounds; reduce/bcast: binomial trees;\n")
	fmt.Fprintf(&b, " every message is an ordinary one-way RMI with the full modelled cost)\n")
	return b.String()
}
