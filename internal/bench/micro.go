package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mpl"
	"repro/internal/splitc"
	"repro/internal/threads"
)

// MicroRow is one line of Table 4.
type MicroRow struct {
	Name string `json:"name"`

	// CC++ columns.
	CCTotal   time.Duration `json:"cc_total"`
	CCAM      time.Duration `json:"cc_am"`
	CCThreads time.Duration `json:"cc_threads"`
	CCYield   float64       `json:"cc_yields"`
	CCCreate  float64       `json:"cc_creates"`
	CCSync    float64       `json:"cc_syncops"`
	CCRuntime time.Duration `json:"cc_runtime"`

	// Split-C columns (HasSC false renders as "-", like the paper's N/A
	// rows: Split-C has no RMI, so the null-RMI variants have no analogue).
	HasSC     bool          `json:"has_sc"`
	SCTotal   time.Duration `json:"sc_total"`
	SCAM      time.Duration `json:"sc_am"`
	SCRuntime time.Duration `json:"sc_runtime"`
}

// benchClass is the processor object the micro-benchmarks invoke, mirroring
// Figure 3's pseudo-code: null methods in every dispatch flavour, bulk get
// and put of an array of 20 doubles.
func benchClass() *core.Class {
	return &core.Class{
		Name: "Bench",
		New:  func() any { return &benchObj{arr: make([]float64, 20)} },
		Methods: []*core.Method{
			{Name: "foo", Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {}},
			{Name: "foo1", NewArgs: args1,
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {}},
			{Name: "foo2", NewArgs: args2,
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {}},
			{Name: "fooThreaded", Threaded: true,
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {}},
			{Name: "atomicFoo", Threaded: true, Atomic: true,
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {}},
			{Name: "put", Threaded: true,
				NewArgs: func() []core.Arg { return []core.Arg{&core.F64Slice{}} },
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {
					copy(self.(*benchObj).arr, a[0].(*core.F64Slice).V)
				}},
			{Name: "get", Threaded: true,
				NewArgs: args1,
				NewRet:  func() core.Arg { return &core.F64Slice{} },
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {
					o := self.(*benchObj)
					out := r.(*core.F64Slice)
					if cap(out.V) < len(o.arr) {
						out.V = make([]float64, len(o.arr))
					}
					out.V = out.V[:len(o.arr)]
					copy(out.V, o.arr)
				}},
		},
	}
}

type benchObj struct{ arr []float64 }

func args1() []core.Arg { return []core.Arg{&core.I64{}} }
func args2() []core.Arg { return []core.Arg{&core.I64{}, &core.I64{}} }

// ccMeasurement is what one CC++ micro-benchmark produces.
type ccMeasurement struct {
	total, threads, runtime  time.Duration
	yields, creates, syncops float64
}

// measureCC runs body iters times on node 0 of a fresh 2-node CC++ rig and
// reconstructs the paper's columns: Total from timestamps, the thread
// columns from operation counts × unit costs (the paper's own estimation
// method), Runtime from the runtime bucket, and AM = Total − Threads −
// Runtime.
func measureCC(cfg machine.Config, iters int, opts core.Options, body func(rt *core.Runtime, gp core.GPtr, t *threads.Thread)) ccMeasurement {
	return measureCCNodes(cfg, iters, opts, body, false)
}

// measureCCNodes optionally restricts accounting to the initiating node
// (used for the pipelined prefetch row, where receiver-side work overlaps
// the wire and the paper reports initiator-side thread/runtime costs).
func measureCCNodes(cfg machine.Config, iters int, opts core.Options, body func(rt *core.Runtime, gp core.GPtr, t *threads.Thread), senderOnly bool) ccMeasurement {
	m := machine.New(cfg, 2)
	rt := core.NewRuntimeOpts(m, opts)
	rt.RegisterClass(benchClass())
	gp := rt.CreateObject(1, "Bench")
	var out ccMeasurement
	rt.OnNode(0, func(t *threads.Thread) {
		// Warm up the stub cache and persistent buffers.
		for i := 0; i < 3; i++ {
			body(rt, gp, t)
		}
		var snaps []machine.Snapshot
		for _, n := range m.Nodes() {
			snaps = append(snaps, n.Acct.Snapshot())
		}
		start := t.Now()
		for i := 0; i < iters; i++ {
			body(rt, gp, t)
		}
		out.total = time.Duration(t.Now()-start) / time.Duration(iters)
		var delta machine.Snapshot
		{
			var ds []machine.Snapshot
			for i, n := range m.Nodes() {
				if senderOnly && i != 0 {
					continue
				}
				ds = append(ds, n.Acct.Delta(snaps[i]))
			}
			delta = machine.MergeSnapshots(ds...)
		}
		fi := float64(iters)
		out.yields = float64(delta.Counters[machine.CntContextSwitch]) / fi
		out.creates = float64(delta.Counters[machine.CntThreadCreate]) / fi
		out.syncops = float64(delta.Counters[machine.CntSyncOp]) / fi
		out.threads = time.Duration(out.yields*float64(cfg.ContextSwitch) +
			out.creates*float64(cfg.ThreadCreate) +
			out.syncops*float64(cfg.SyncOp))
		out.runtime = delta.Get(machine.CatRuntime) / time.Duration(iters)
	})
	if err := rt.Run(); err != nil {
		panic(err)
	}
	return out
}

// scMeasurement is what one Split-C micro-benchmark produces.
type scMeasurement struct {
	total, runtime time.Duration
}

// measureSC runs body iters times on node 0 of a fresh 2-node Split-C world.
// remote points into node 1's memory.
func measureSC(cfg machine.Config, iters int, body func(p *splitc.Proc, remote []float64, local []float64)) scMeasurement {
	m := machine.New(cfg, 2)
	w := splitc.New(m)
	remote := make([]float64, 32)
	local := make([]float64, 32)
	var out scMeasurement
	err := w.Run(func(p *splitc.Proc) {
		if p.MyPC() == 0 {
			body(p, remote, local) // warm-up
			var snaps []machine.Snapshot
			for _, n := range m.Nodes() {
				snaps = append(snaps, n.Acct.Snapshot())
			}
			start := p.T.Now()
			for i := 0; i < iters; i++ {
				body(p, remote, local)
			}
			out.total = time.Duration(p.T.Now()-start) / time.Duration(iters)
			var ds []machine.Snapshot
			for i, n := range m.Nodes() {
				ds = append(ds, n.Acct.Delta(snaps[i]))
			}
			out.runtime = machine.MergeSnapshots(ds...).Get(machine.CatRuntime) / time.Duration(iters)
		}
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	return out
}

// RunMicro reproduces Table 4.
func RunMicro(cfg machine.Config, sc Scale) []MicroRow {
	iters := sc.MicroIters
	rows := []MicroRow{}

	add := func(name string, cc ccMeasurement, scm *scMeasurement) {
		r := MicroRow{
			Name:    name,
			CCTotal: cc.total, CCThreads: cc.threads,
			CCYield: cc.yields, CCCreate: cc.creates, CCSync: cc.syncops,
			CCRuntime: cc.runtime,
			CCAM:      cc.total - cc.threads - cc.runtime,
		}
		if scm != nil {
			r.HasSC = true
			r.SCTotal = scm.total
			r.SCRuntime = scm.runtime
			r.SCAM = scm.total - scm.runtime
		}
		rows = append(rows, r)
	}

	// Null-RMI variants (no Split-C analogue).
	add("0-Word Simple", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.CallSimple(t, gp, "foo", nil, nil)
		}), nil)
	add("0-Word", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "foo", nil, nil)
		}), nil)
	add("1-Word", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "foo1", []core.Arg{&core.I64{V: 1}}, nil)
		}), nil)
	add("2-Word", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "foo2", []core.Arg{&core.I64{V: 1}, &core.I64{V: 2}}, nil)
		}), nil)
	add("0-Word Threaded", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "fooThreaded", nil, nil)
		}), nil)

	// 0-Word Atomic: Split-C's atomic remote operation alongside.
	scAtomic := measureSC(cfg, iters, func(p *splitc.Proc, remote, local []float64) {
		p.AtomicAdd(splitc.GPF{PC: 1, P: &remote[0]}, 1)
		p.Sync()
	})
	add("0-Word Atomic", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "atomicFoo", nil, nil)
		}), &scAtomic)

	// GP 2-word read/write.
	scGP := measureSC(cfg, iters, func(p *splitc.Proc, remote, local []float64) {
		local[0] = p.Read(splitc.GPF{PC: 1, P: &remote[0]})
	})
	remoteCell := make([]float64, 1)
	add("GP 2-Word R/W", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			_ = rt.ReadF64(t, core.NewGPF64(1, &remoteCell[0]))
		}), &scGP)

	// Bulk transfers of 20 doubles (40 words).
	arr := make([]float64, 20)
	scBW := measureSC(cfg, iters, func(p *splitc.Proc, remote, local []float64) {
		p.BulkWrite(splitc.GVF{PC: 1, S: remote[:20]}, local[:20])
	})
	add("BulkWrite 40-Word", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "put", []core.Arg{&core.F64Slice{V: arr}}, nil)
		}), &scBW)

	scBR := measureSC(cfg, iters, func(p *splitc.Proc, remote, local []float64) {
		p.BulkRead(local[:20], splitc.GVF{PC: 1, S: remote[:20]})
	})
	retArr := &core.F64Slice{V: make([]float64, 20)}
	add("BulkRead 40-Word", measureCC(cfg, iters, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "get", []core.Arg{&core.I64{V: 0}}, retArr)
		}), &scBR)

	// Prefetch of 20 remote doubles; reported per element like the paper.
	scPF := measureSC(cfg, iters/10+1, func(p *splitc.Proc, remote, local []float64) {
		for i := 0; i < 20; i++ {
			p.Get(&local[i], splitc.GPF{PC: 1, P: &remote[i]})
		}
		p.Sync()
	})
	scPF.total /= 20
	scPF.runtime /= 20
	remoteArr := make([]float64, 20)
	ccPF := measureCCNodes(cfg, iters/10+1, core.Options{},
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			core.ParFor(t, 20, func(t2 *threads.Thread, i int) {
				_ = rt.ReadF64(t2, core.NewGPF64(1, &remoteArr[i]))
			})
		}, true)
	ccPF.total /= 20
	ccPF.threads /= 20
	ccPF.runtime /= 20
	ccPF.yields /= 20
	ccPF.creates /= 20
	ccPF.syncops /= 20
	add("Prefetch 20-Word (per elem)", ccPF, &scPF)

	return rows
}

// MPLReferenceRTT measures the IBM MPL round trip the paper quotes (88 µs).
func MPLReferenceRTT(cfg machine.Config, iters int) time.Duration {
	m := machine.New(cfg, 2)
	w := mpl.New(m)
	s0 := threads.NewScheduler(m.Node(0))
	s1 := threads.NewScheduler(m.Node(1))
	w.Attach(0, s0)
	w.Attach(1, s1)
	var rtt time.Duration
	s0.Start("rank0", func(t *threads.Thread) {
		start := t.Now()
		for i := 0; i < iters; i++ {
			w.Send(t, 0, 1, 1, nil)
			w.Recv(t, 0, 1, 2)
		}
		rtt = time.Duration(t.Now()-start) / time.Duration(iters)
	})
	s1.Start("rank1", func(t *threads.Thread) {
		for i := 0; i < iters; i++ {
			w.Recv(t, 1, 0, 1)
			w.Send(t, 1, 0, 2, nil)
		}
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return rtt
}

// FormatMicro renders Table 4 with the paper's measured values alongside.
func FormatMicro(rows []MicroRow, mplRTT time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: micro-benchmarks (CC++/ThAM vs Split-C on the modelled SP)\n")
	fmt.Fprintf(&b, "%-28s | %7s %7s %7s %5s %6s %5s %7s | %7s %7s %7s | %9s %9s\n",
		"benchmark", "ccTot", "ccAM", "ccThr", "yld", "crt", "syn", "ccRT",
		"scTot", "scAM", "scRT", "paperCC", "paperSC")
	f := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000.0) }
	for _, r := range rows {
		sc1, sc2, sc3 := "-", "-", "-"
		if r.HasSC {
			sc1, sc2, sc3 = f(r.SCTotal), f(r.SCAM), f(r.SCRuntime)
		}
		p := paperTable4[r.Name]
		fmt.Fprintf(&b, "%-28s | %7s %7s %7s %5.1f %6.1f %5.1f %7s | %7s %7s %7s | %9s %9s\n",
			r.Name, f(r.CCTotal), f(r.CCAM), f(r.CCThreads),
			r.CCYield, r.CCCreate, r.CCSync, f(r.CCRuntime),
			sc1, sc2, sc3, p.cc, p.sc)
	}
	fmt.Fprintf(&b, "%-28s | %7s µs (paper: 88 µs)\n", "MPL round-trip (reference)", f(mplRTT))
	fmt.Fprintf(&b, "(all times in µs per operation; yld/crt/syn are thread ops per iteration)\n")
	return b.String()
}
