package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// CodeSizeRow reports one component's size, mirroring Table 1's comparison
// of the Nexus-based and ThAM-based CC++ runtime implementations with this
// repository's equivalents.
type CodeSizeRow struct {
	Component string `json:"component"`
	GoLines   int    `json:"go_lines"`
	TestLines int    `json:"test_lines"`
	// PaperC/PaperH hold the original implementation's line counts when the
	// component corresponds to a Table 1 entry.
	PaperC int `json:"paper_c_lines"`
	PaperH int `json:"paper_h_lines"`
}

// moduleRoot locates the repository root from this source file's location.
func moduleRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countGoLines counts non-blank lines in the package directory, split into
// implementation and test files.
func countGoLines(dir string) (impl, test int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		n := countFileLines(filepath.Join(dir, e.Name()))
		if strings.HasSuffix(e.Name(), "_test.go") {
			test += n
		} else {
			impl += n
		}
	}
	return impl, test
}

func countFileLines(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n
}

// RunCodeSize reproduces Table 1: the size of this repository's runtime
// components, with the paper's corresponding line counts alongside. The
// structural point of Table 1 — the lean ThAM-based runtime is two orders of
// magnitude smaller than Nexus — maps onto the nexus transport package being
// a small surcharge layer while core+tham stay a few thousand lines.
func RunCodeSize() []CodeSizeRow {
	root := moduleRoot()
	row := func(component, rel string, paperC, paperH int) CodeSizeRow {
		impl, test := countGoLines(filepath.Join(root, rel))
		return CodeSizeRow{Component: component, GoLines: impl, TestLines: test, PaperC: paperC, PaperH: paperH}
	}
	return []CodeSizeRow{
		row("core (CC++ runtime)", "internal/core", 2682, 1346),
		row("tham", "internal/tham", 1155, 726),
		row("nexus transport", "internal/nexus", 39226, 6552),
		row("am (Active Messages)", "internal/am", 0, 0),
		row("threads package", "internal/threads", 0, 0),
		row("splitc runtime", "internal/splitc", 0, 0),
		row("machine model", "internal/machine", 0, 0),
		row("sim engine", "internal/sim", 0, 0),
	}
}

// FormatCodeSize renders Table 1.
func FormatCodeSize(rows []CodeSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: source-code size (this repo vs the paper's implementations)\n")
	fmt.Fprintf(&b, "%-24s | %8s %8s | %10s %10s\n", "component", "go", "tests", "paper .C", "paper .H")
	for _, r := range rows {
		pc, ph := "-", "-"
		if r.PaperC > 0 {
			pc, ph = fmt.Sprint(r.PaperC), fmt.Sprint(r.PaperH)
		}
		fmt.Fprintf(&b, "%-24s | %8d %8d | %10s %10s\n", r.Component, r.GoLines, r.TestLines, pc, ph)
	}
	fmt.Fprintf(&b, "(paper columns: Nexus v3.0 maps to the nexus row; CC++ w/ThAM to core; ThAM to tham)\n")
	return b.String()
}
