package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/threads"
	"repro/internal/trace"
	"repro/internal/transport/netlive"
)

// ThroughputRow is one line of the sustained-throughput experiment: half the
// nodes act as clients, each driving warm RMIs (or 1 KiB bulk puts) at its
// paired server node as fast as the backend allows. Elapsed is the backend
// clock over the measured region — wall time on the live backend, virtual
// time on the simulator — so OpsPerSec is directly comparable across runs of
// the same backend and establishes the wire-path performance trajectory.
type ThroughputRow struct {
	Experiment string `json:"experiment"` // "rmi" or "bulk"
	// Transport labels which wire path carried the cross-shard frames on the
	// net backend: "shm" (shared-memory shard rings) or "socket". Empty on
	// single-process backends, where there is no wire.
	Transport string        `json:"transport,omitempty"`
	Nodes     int           `json:"nodes"`
	Pairs     int           `json:"pairs"`
	Iters     int           `json:"iters_per_pair"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`
	MBps      float64       `json:"mbps"` // non-zero for bulk rows
	// P50/P99/P999 are wall-clock RMI round-trip latency percentiles over the
	// row's operations (log-bucket upper bounds from the metrics registry).
	// Zero on the sim backend, which has no wall-clock registry.
	P50  time.Duration `json:"rmi_p50_ns,omitempty"`
	P99  time.Duration `json:"rmi_p99_ns,omitempty"`
	P999 time.Duration `json:"rmi_p999_ns,omitempty"`
}

// latencyPercentiles copies a latency histogram window's report percentiles
// into the row.
func (r *ThroughputRow) latencyPercentiles(h metrics.HistSnap) {
	r.P50 = time.Duration(h.P50())
	r.P99 = time.Duration(h.P99())
	r.P999 = time.Duration(h.P999())
}

// throughputBulkBytes sizes the bulk rows (1 KiB, the pinned warm-bulk size).
const throughputBulkBytes = 1024

// tputObj is the server-side sink object for the throughput rows.
type tputObj struct{ buf []byte }

// throughputClass is the server-side processor object: a no-argument null
// method for the RMI rows and a 1 KiB sink for the bulk rows.
func throughputClass() *core.Class {
	return &core.Class{
		Name: "Tput",
		New:  func() any { return &tputObj{buf: make([]byte, throughputBulkBytes)} },
		Methods: []*core.Method{
			{Name: "null", Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {}},
			{Name: "sink",
				NewArgs: func() []core.Arg { return []core.Arg{&core.Bytes{}} },
				Fn: func(t *threads.Thread, self any, a []core.Arg, r core.Arg) {
					copy(self.(*tputObj).buf, a[0].(*core.Bytes).V)
				}},
		},
	}
}

// runThroughputOnce builds a fresh machine of the given backend and node
// count and drives iters operations from every client node concurrently.
// body runs one warm operation; the returned duration is the backend-clock
// span from the first post-warm-up operation to the last completion across
// all clients.
func runThroughputOnce(cfg machine.Config, backend string, nodes, iters int, tl *trace.Log,
	body func(rt *core.Runtime, gp core.GPtr, t *threads.Thread)) (time.Duration, *machine.Machine) {
	var m *machine.Machine
	if backend == "live" {
		m = liveMachine(cfg, nodes)
	} else {
		m = machine.New(cfg, nodes)
	}
	if tl != nil {
		trace.Attach(m, tl)
	}
	track(m)
	rt := core.NewRuntime(m)
	rt.RegisterClass(throughputClass())
	pairs := nodes / 2
	gps := make([]core.GPtr, pairs)
	for i := 0; i < pairs; i++ {
		gps[i] = rt.CreateObject(pairs+i, "Tput")
	}
	var start, end time.Duration
	bar := rt.NewBarrier(0, pairs)
	for i := 0; i < pairs; i++ {
		i := i
		rt.OnNode(i, func(t *threads.Thread) {
			for k := 0; k < 3; k++ { // warm stubs, buffers, pools
				body(rt, gps[i], t)
			}
			bar.Arrive(t)
			if i == 0 {
				start = m.Now()
			}
			for k := 0; k < iters; k++ {
				body(rt, gps[i], t)
			}
			bar.Arrive(t)
			if i == 0 {
				end = m.Now()
			}
		})
	}
	if err := rt.Run(); err != nil {
		panic(fmt.Sprintf("throughput %s/%d nodes: %v", backend, nodes, err))
	}
	return end - start, m
}

// throughputNodeCounts picks the machine sizes per scale.
func throughputNodeCounts(sc Scale) []int {
	if sc.Name == "quick" {
		return []int{2, 4}
	}
	return []int{2, 4, 8}
}

// RunThroughput measures sustained warm-RMI rate and bulk bandwidth per node
// count on the given backend ("sim" or "live").
func RunThroughput(cfg machine.Config, sc Scale, backend string) []ThroughputRow {
	iters := sc.MicroIters
	payload := make([]byte, throughputBulkBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	var rows []ThroughputRow
	for _, nodes := range throughputNodeCounts(sc) {
		pairs := nodes / 2
		elapsed, m := runThroughputOnce(cfg, backend, nodes, iters, nil,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "null", nil, nil)
			})
		row := ThroughputRow{Experiment: "rmi", Nodes: nodes, Pairs: pairs,
			Iters: iters, Elapsed: elapsed}
		if elapsed > 0 {
			row.OpsPerSec = float64(pairs*iters) / elapsed.Seconds()
		}
		// Each row ran on a fresh machine, so the whole-run latency histogram
		// is (warm-up ops aside) exactly this row's operations.
		if ms, ok := m.Metrics(); ok {
			row.latencyPercentiles(ms.Hist(metrics.HstRMILatency))
		}
		rows = append(rows, row)

		// Hoisted: a fresh []Arg literal inside the measured loop would add
		// one allocation per op to the very metric this experiment tracks.
		bulkArgs := []core.Arg{&core.Bytes{V: payload}}
		elapsed, m = runThroughputOnce(cfg, backend, nodes, iters, nil,
			func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
				rt.Call(t, gp, "sink", bulkArgs, nil)
			})
		row = ThroughputRow{Experiment: "bulk", Nodes: nodes, Pairs: pairs,
			Iters: iters, Elapsed: elapsed}
		if elapsed > 0 {
			row.OpsPerSec = float64(pairs*iters) / elapsed.Seconds()
			row.MBps = row.OpsPerSec * throughputBulkBytes / (1 << 20)
		}
		if ms, ok := m.Metrics(); ok {
			row.latencyPercentiles(ms.Hist(metrics.HstRMILatency))
		}
		rows = append(rows, row)
	}
	return rows
}

// RunStats drives the warm null-RMI workload on one machine of the given
// backend and returns the machine-wide observability rows: merged accounting
// counters plus (on live backends) wall-clock latency percentiles and queue
// metrics. When tl is non-nil the run is traced into it — this is the
// machine mpmdbench's -trace flag captures.
func RunStats(cfg machine.Config, sc Scale, backend string, tl *trace.Log) ([]StatsRow, error) {
	const nodes = 4
	_, m := runThroughputOnce(cfg, backend, nodes, sc.MicroIters, tl,
		func(rt *core.Runtime, gp core.GPtr, t *threads.Thread) {
			rt.Call(t, gp, "null", nil, nil)
		})
	cs, err := m.ClusterStats()
	if err != nil {
		return nil, err
	}
	return StatsRows(cs), nil
}

// RunThroughputNet measures sustained warm-RMI rate and bulk bandwidth on
// the sharded multi-process backend: clients live in shard 0 (this process),
// servers in the peer shards, so every measured operation crosses a real
// wire — the shared-memory shard rings by default, or (disableShm) the
// socket path, which is how the shm speedup is measured: two waves of the
// same workload, one per transport. Unlike RunThroughput it builds exactly
// one machine and runs both experiments inside one Run — a process re-execs
// its whole program per machine, so one net machine per process (per wave)
// is the contract. Re-exec'd workers of a disableShm parent inherit the
// choice through the environment, so a worker's own disableShm argument is
// irrelevant and the caller can pass false in both waves.
//
// worker reports whether this process is a re-exec'd peer shard; the caller
// must then discard the rows and exit instead of reporting (the parent owns
// stdout).
//
// On the parent, stats carries the machine-wide observability rows assembled
// from every shard's kStats report — the counters are the true cross-process
// merge, not this process's view. When tl is non-nil the parent shard's
// events are traced into it.
func RunThroughputNet(cfg machine.Config, sc Scale, nodes, nodesPerShard int, tl *trace.Log, disableShm bool) (rows []ThroughputRow, stats []StatsRow, worker bool, err error) {
	if nodes%2 != 0 || nodesPerShard <= 0 {
		return nil, nil, false, fmt.Errorf("throughput/net: need an even node count and positive nodes-per-shard (got %d/%d)", nodes, nodesPerShard)
	}
	be, err := netlive.New(nodes, netlive.Options{NodesPerShard: nodesPerShard, DisableShm: disableShm})
	if err != nil {
		return nil, nil, false, err
	}
	worker = be.Shard() != 0
	m := machine.NewWithBackend(cfg, nodes, be)
	if tl != nil && !worker {
		trace.Attach(m, tl)
	}
	track(m)
	rt := core.NewRuntime(m)
	rt.RegisterClass(throughputClass())
	pairs := nodes / 2
	iters := sc.MicroIters
	gps := make([]core.GPtr, pairs)
	for i := 0; i < pairs; i++ {
		gps[i] = rt.CreateObject(pairs+i, "Tput")
	}
	payload := make([]byte, throughputBulkBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	bar := rt.NewBarrier(0, pairs)
	var tRMI, tBulk time.Duration
	// All clients run in this shard, so the parent's local registry holds
	// every RMI-latency observation. midRMI splits the one histogram into the
	// rmi window and the bulk window (end minus mid).
	var midRMI metrics.HistSnap
	for i := 0; i < pairs; i++ {
		i := i
		rt.OnNode(i, func(t *threads.Thread) {
			bulkArgs := []core.Arg{&core.Bytes{V: payload}}
			phase := func(dur *time.Duration, body func()) {
				// More warm-up than the single-process experiment: besides
				// stubs, buffers, and pools, these ops ride out re-exec'd
				// worker processes still settling (GC, page tables, scheduler).
				for k := 0; k < 16; k++ {
					body()
				}
				bar.Arrive(t)
				start := m.Now()
				for k := 0; k < iters; k++ {
					body()
				}
				bar.Arrive(t)
				if i == 0 {
					*dur = m.Now() - start
				}
			}
			phase(&tRMI, func() { rt.Call(t, gps[i], "null", nil, nil) })
			if i == 0 {
				if ms, ok := m.Metrics(); ok {
					midRMI = ms.Hist(metrics.HstRMILatency)
				}
			}
			phase(&tBulk, func() { rt.Call(t, gps[i], "sink", bulkArgs, nil) })
		})
	}
	if err := rt.Run(); err != nil {
		return nil, nil, worker, fmt.Errorf("throughput/net %d nodes: %w", nodes, err)
	}
	if worker {
		return nil, nil, true, nil
	}
	cs, err := m.ClusterStats()
	if err != nil {
		return nil, nil, false, fmt.Errorf("throughput/net %d nodes: %w", nodes, err)
	}
	stats = StatsRows(cs)
	transport := "socket"
	if be.ShmActive() {
		transport = "shm"
	}
	rmiRow := ThroughputRow{Experiment: "rmi", Transport: transport, Nodes: nodes, Pairs: pairs, Iters: iters, Elapsed: tRMI}
	if tRMI > 0 {
		rmiRow.OpsPerSec = float64(pairs*iters) / tRMI.Seconds()
	}
	bulkRow := ThroughputRow{Experiment: "bulk", Transport: transport, Nodes: nodes, Pairs: pairs, Iters: iters, Elapsed: tBulk}
	if tBulk > 0 {
		bulkRow.OpsPerSec = float64(pairs*iters) / tBulk.Seconds()
		bulkRow.MBps = bulkRow.OpsPerSec * throughputBulkBytes / (1 << 20)
	}
	if ms, ok := m.Metrics(); ok {
		end := ms.Hist(metrics.HstRMILatency)
		rmiRow.latencyPercentiles(midRMI)
		bulkRow.latencyPercentiles(end.Sub(midRMI))
	}
	return []ThroughputRow{rmiRow, bulkRow}, stats, false, nil
}

// FormatThroughput renders the sustained-throughput table.
func FormatThroughput(rows []ThroughputRow, backend string) string {
	var b strings.Builder
	clock := "virtual time"
	if backend != "sim" {
		clock = "wall-clock"
	}
	fmt.Fprintf(&b, "Sustained wire-path throughput (%s backend, %s)\n", backend, clock)
	fmt.Fprintf(&b, "%-6s | %-6s | %5s | %5s | %10s | %12s | %10s | %8s | %8s | %8s\n",
		"exp", "wire", "nodes", "pairs", "elapsed", "ops/s", "bandwidth", "p50", "p99", "p999")
	for _, r := range rows {
		bw := "-"
		if r.MBps > 0 {
			bw = fmt.Sprintf("%.0f MB/s", r.MBps)
		}
		wire := r.Transport
		if wire == "" {
			wire = "-"
		}
		pct := func(d time.Duration) string {
			if d == 0 {
				return "-"
			}
			return d.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-6s | %-6s | %5d | %5d | %10s | %12.0f | %10s | %8s | %8s | %8s\n",
			r.Experiment, wire, r.Nodes, r.Pairs, r.Elapsed.Round(10*time.Microsecond), r.OpsPerSec, bw,
			pct(r.P50), pct(r.P99), pct(r.P999))
	}
	fmt.Fprintf(&b, "(half the nodes drive warm null RMIs / 1 KiB bulk puts at the other half;\n")
	fmt.Fprintf(&b, " rates use the backend clock, so live rows track real GC and scheduling cost)\n")
	return b.String()
}
