package bench

import (
	"encoding/json"
	"time"
)

// Report is the machine-readable form of an mpmdbench run, emitted by the
// -json flag so successive runs can accumulate a performance trajectory
// (BENCH_*.json files). Row payloads are the same structs the text
// formatters render; time.Duration fields marshal as integer nanoseconds.
type Report struct {
	// Schema versions the report layout.
	Schema string `json:"schema"`
	// Backend is "sim" (calibrated virtual time) or "live" (wall-clock).
	Backend string `json:"backend"`
	// Profile is the machine cost profile (cfg.Name); Scale the experiment
	// sizing ("full" or "quick").
	Profile string `json:"profile"`
	Scale   string `json:"scale"`
	// DurationUnit documents how duration-typed row fields are encoded.
	DurationUnit string `json:"duration_unit"`
	// WallMS is the total wall-clock time of the run in milliseconds.
	WallMS      float64      `json:"wall_ms"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one named table or figure regeneration within a report.
type Experiment struct {
	Name string `json:"name"`
	// WallMS is how long the regeneration took in wall-clock milliseconds
	// (sim-backend row times are virtual and live inside Rows).
	WallMS float64 `json:"wall_ms"`
	// Rows carries the experiment's row structs verbatim.
	Rows any `json:"rows"`
}

// ReportSchema is the current report schema identifier. v5 added per-row
// RMI-latency percentiles (rmi_p50_ns/rmi_p99_ns/rmi_p999_ns) and the
// transport label ("shm" or "socket") to throughput rows; on the net backend
// the throughput experiment now carries both transports' waves in one
// report. v4 added the observability experiment ("stats", []StatsRow):
// machine-wide merged accounting counters — on the net backend the true
// cross-process merge of every shard's kStats report — plus wall-clock
// latency histograms with p50/p99/p999 on the live backends. v3 added the
// sustained-throughput experiment ("throughput", []ThroughputRow) on both
// backends; v2 added the collective-operations experiment ("coll",
// []CollRow). Earlier reports are otherwise layout-compatible.
const ReportSchema = "mpmdbench/v5"

// NewReport starts an empty report for the given backend, profile and scale.
func NewReport(backend, profile, scale string) *Report {
	return &Report{
		Schema:       ReportSchema,
		Backend:      backend,
		Profile:      profile,
		Scale:        scale,
		DurationUnit: "ns",
	}
}

// Add appends one experiment's rows.
func (r *Report) Add(name string, wall time.Duration, rows any) {
	r.Experiments = append(r.Experiments, Experiment{
		Name:   name,
		WallMS: float64(wall.Microseconds()) / 1000,
		Rows:   rows,
	})
	r.WallMS += float64(wall.Microseconds()) / 1000
}

// JSON renders the report, indented for textual diffing.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MicroReport wraps Table 4's rows with the MPL reference round trip so the
// JSON form carries everything the text table shows.
type MicroReport struct {
	Rows            []MicroRow    `json:"rows"`
	MPLReferenceRTT time.Duration `json:"mpl_reference_rtt_ns"`
}
