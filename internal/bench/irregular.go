package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps/taskfarm"
	"repro/internal/machine"
)

// IrregularRow compares static SPMD and dynamic MPMD scheduling of one
// skewed task bag.
type IrregularRow struct {
	Skew    float64       `json:"skew"`
	Static  time.Duration `json:"static"`
	Dynamic time.Duration `json:"dynamic"`
	Speedup float64       `json:"speedup"` // static/dynamic; > 1 means MPMD wins
}

// RunIrregular is the extension experiment behind the paper's introduction:
// a sweep over workload skew showing where the MPMD model's dynamic
// scheduling overtakes the SPMD static partition despite paying an RMI per
// task batch (and despite dedicating a node to the master). See package
// taskfarm for the model.
func RunIrregular(cfg machine.Config, sc Scale) []IrregularRow {
	tasks := 200
	if sc.Name == "quick" {
		tasks = 80
	}
	var rows []IrregularRow
	for _, skew := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9} {
		w := taskfarm.Build(taskfarm.Params{
			Tasks: tasks, Procs: 4, MeanCost: 200 * time.Microsecond,
			Skew: skew, Seed: 9,
		})
		st, err := taskfarm.RunSplitC(cfg, w)
		if err != nil {
			panic(err)
		}
		dy, err := taskfarm.RunCCXX(cfg, w, 4)
		if err != nil {
			panic(err)
		}
		rows = append(rows, IrregularRow{
			Skew:    skew,
			Static:  st.Elapsed,
			Dynamic: dy.Elapsed,
			Speedup: float64(st.Elapsed) / float64(dy.Elapsed),
		})
	}
	return rows
}

// FormatIrregular renders the sweep.
func FormatIrregular(rows []IrregularRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: irregular workload — static SPMD partition vs dynamic MPMD task farm\n")
	fmt.Fprintf(&b, "(4 nodes; the MPMD side dedicates one node to the master and pays an RMI per batch)\n")
	fmt.Fprintf(&b, "%6s | %12s %12s | %8s\n", "skew", "static SPMD", "dynamic MPMD", "speedup")
	for _, r := range rows {
		marker := ""
		if r.Speedup > 1 {
			marker = "  <- MPMD wins"
		}
		fmt.Fprintf(&b, "%6.2f | %12v %12v | %7.2fx%s\n", r.Skew, r.Static, r.Dynamic, r.Speedup, marker)
	}
	fmt.Fprintf(&b, "The crossover quantifies the paper's qualitative claim that MPMD suits\n")
	fmt.Fprintf(&b, "irregular computation despite its communication premium (§1).\n")
	return b.String()
}
