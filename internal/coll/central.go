package coll

// This file holds the central-coordinator collective plans: one root
// absorbs every participant's contribution and releases the result. Linear
// in messages and rounds — the pattern Split-C's library collectives and
// the paper's measurements use — kept here so internal/splitc's barrier and
// all_reduce are built from the same package as the log-depth team
// collectives while preserving their exact wire traffic and modelled costs
// (the splitc parity test pins those numbers).

// ReduceOp selects a reduction combiner over doubles.
type ReduceOp int

// The reduction operators Split-C's library provides for doubles.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// String names the operator in reports.
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return "ReduceOp(?)"
	}
}

// Combine applies the operator to two doubles.
func (op ReduceOp) Combine(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		panic("coll: unknown ReduceOp")
	}
}

// CentralReduce is the root-side state of a central reduction over n
// participants: Absorb folds contributions as they arrive and reports
// completion on the n-th, resetting for the next round.
type CentralReduce struct {
	n     int
	count int
	acc   float64
}

// NewCentralReduce builds the state for n participants.
func NewCentralReduce(n int) *CentralReduce { return &CentralReduce{n: n} }

// Absorb folds one contribution. When the last participant's value lands it
// returns (result, true) and resets; before that the partial and false.
func (c *CentralReduce) Absorb(op ReduceOp, v float64) (float64, bool) {
	if c.count == 0 {
		c.acc = v
	} else {
		c.acc = op.Combine(c.acc, v)
	}
	c.count++
	if c.count == c.n {
		c.count = 0
		return c.acc, true
	}
	return c.acc, false
}

// CentralCounter is the root-side state of a central barrier over n
// participants: Arrive counts entries and reports the release generation
// when the last one lands.
type CentralCounter struct {
	n     int
	count int
	gen   int
}

// NewCentralCounter builds the state for n participants.
func NewCentralCounter(n int) *CentralCounter { return &CentralCounter{n: n} }

// Arrive records one entry. On the n-th it advances and returns the new
// generation with release=true; otherwise the current generation and false.
func (c *CentralCounter) Arrive() (gen int, release bool) {
	c.count++
	if c.count == c.n {
		c.count = 0
		c.gen++
		return c.gen, true
	}
	return c.gen, false
}
