package coll

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// The acceptance bar for the team collectives: Barrier and AllReduce must
// complete in O(log n) communication rounds. The dissemination barrier has
// every member send exactly ceil(log2 n) messages per operation (one per
// round), and the binomial all-reduce at most 1 (reduce up) + ceil(log2 n)
// (broadcast down) — against the O(n) messages at the coordinator of the
// central plans. The test counts actual wire messages per node via the
// machine's accounting, after a warm-up that takes the stub-cache cold path
// out of the picture, and also checks that virtual completion time grows
// logarithmically, not linearly, with the team size.
func TestLogDepthRounds(t *testing.T) {
	const iters = 5
	elapsedBarrier := map[int]time.Duration{}
	elapsedAllReduce := map[int]time.Duration{}

	for _, n := range []int{4, 8, 16} {
		rounds := ceilLog2(n)
		m := machine.New(machine.SP1997(), n)
		rt := core.NewRuntime(m)
		tm := For(rt).World()

		barrierSends := make([]int64, n)
		reduceSends := make([]int64, n)
		barrierTime := make([]time.Duration, n)
		reduceTime := make([]time.Duration, n)
		for i := 0; i < n; i++ {
			i := i
			rt.OnNode(i, func(th *threads.Thread) {
				acct := th.Node().Acct
				// Warm the stub caches on every tree edge both ops use.
				tm.Barrier(th)
				tm.AllReduce(th, EncF64(1), SumF64)
				tm.Barrier(th)

				before := acct.Counter(machine.CntMsgBulk)
				start := th.Now()
				for k := 0; k < iters; k++ {
					tm.Barrier(th)
				}
				barrierTime[i] = time.Duration(th.Now() - start)
				barrierSends[i] = acct.Counter(machine.CntMsgBulk) - before

				before = acct.Counter(machine.CntMsgBulk)
				start = th.Now()
				for k := 0; k < iters; k++ {
					tm.AllReduce(th, EncF64(float64(i)), SumF64)
				}
				reduceTime[i] = time.Duration(th.Now() - start)
				reduceSends[i] = acct.Counter(machine.CntMsgBulk) - before
			})
		}
		if err := rt.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		for i := 0; i < n; i++ {
			// Dissemination barrier: exactly one message per round per member.
			if got, want := barrierSends[i], int64(iters*rounds); got != want {
				t.Errorf("n=%d node %d: %d barrier messages over %d barriers, want exactly %d (ceil(log2 %d)=%d rounds each)",
					n, i, got, iters, want, n, rounds)
			}
			// Binomial reduce+bcast: at most one up plus log n down per member.
			if got, max := reduceSends[i], int64(iters*(1+rounds)); got > max {
				t.Errorf("n=%d node %d: %d allreduce messages over %d ops, want <= %d",
					n, i, got, iters, max)
			}
		}
		elapsedBarrier[n] = maxDur(barrierTime)
		elapsedAllReduce[n] = maxDur(reduceTime)
	}

	// Quadrupling the team must cost ~2x (one extra round per doubling), not
	// ~4x: the virtual completion time is the round-depth signature.
	for name, el := range map[string]map[int]time.Duration{
		"Barrier": elapsedBarrier, "AllReduce": elapsedAllReduce,
	} {
		ratio := float64(el[16]) / float64(el[4])
		if ratio >= 3 {
			t.Errorf("%s: virtual time grew %.2fx from n=4 to n=16 (linear-depth behavior; want ~2x for log depth)", name, ratio)
		}
		if el[4] >= el[8] || el[8] >= el[16] {
			t.Errorf("%s: virtual times not increasing with n: 4:%v 8:%v 16:%v", name, el[4], el[8], el[16])
		}
	}
}

func maxDur(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m
}
