// Package coll implements group communication for the MPMD runtime: teams
// (communicators over node subsets) and the collective operations scoped to
// them — barrier, broadcast, reduce/all-reduce, scatter/gather/all-gather —
// plus the mailbox machinery behind Dist, the typed distributed array.
//
// Everything lowers onto the existing RMI wire path (core.Runtime one-way
// and synchronous calls to a per-node mailbox object), so the modelled
// costs stay honest: collective messages pay the same marshalling,
// stub-cache, persistent-buffer, and AM charges as any application RMI.
// The algorithms are the log-depth classics — a dissemination barrier and
// binomial trees for the data collectives — so an n-member operation
// completes in O(log n) communication rounds where the hand-rolled central
// patterns applications used before were O(n) (see logdepth_test.go).
//
// Payloads are opaque []byte at this layer; the typed surface in package
// mpmd encodes values through the rmigen codecs. The package also hosts the
// central-coordinator state machines (central.go) that internal/splitc's
// library collectives are built from — the linear plan the paper's Split-C
// measurements used, kept bit-identical in cost.
package coll

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
)

// collClassName is the registered class of the per-node mailbox objects.
const collClassName = "__coll"

// extKey is the core-runtime extension slot the Comm lives in.
const extKey = "coll.comm"

// collObj is the per-node mailbox: collective payloads land here (keyed by
// team/sequence/phase/slot) until the member thread consumes them, and Dist
// arrays hook their owner-side accessors in. It is touched only from its
// node's execution context — the deliver/dget/dput handlers run on the
// owning node, and the consuming member thread is that node's.
type collObj struct {
	mail  map[string][]byte
	dists map[string]DistHooks
}

// DistHooks are the owner-side accessors of one Dist array's local part.
// They run on the owning node in handler context; like the rmigen
// trampolines they are wall-time-only glue — the wire traffic around them
// carries the modelled cost.
type DistHooks struct {
	// Get encodes the element at owner-local offset off.
	Get func(off int) []byte
	// Put decodes b into the element at owner-local offset off.
	Put func(off int, b []byte)
}

// Comm is the per-runtime collective engine: one mailbox object per node
// plus the world team. Create it (or the world team through it) before Run.
type Comm struct {
	rt    *core.Runtime
	objs  []core.GPtr
	world *Team
	dists int
}

// For returns the runtime's collective engine, creating and registering it
// on first use. Must first be called before Run (class registration and
// object placement are setup-time operations).
func For(rt *core.Runtime) *Comm {
	if v := rt.Ext(extKey); v != nil {
		return v.(*Comm)
	}
	c := &Comm{rt: rt}
	rt.RegisterClass(c.collClass())
	n := rt.Machine().NumNodes()
	for i := 0; i < n; i++ {
		c.objs = append(c.objs, rt.CreateObject(i, collClassName))
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	c.world = newTeam(c, "w", nodes)
	rt.SetExt(extKey, c)
	return c
}

// Runtime returns the CC++ runtime the engine is bound to.
func (c *Comm) Runtime() *core.Runtime { return c.rt }

// World returns the team of all nodes.
func (c *Comm) World() *Team { return c.world }

// obj returns the mailbox of the node t runs on.
func (c *Comm) obj(t *threads.Thread) *collObj {
	return c.rt.Object(c.objs[t.Node().ID]).(*collObj)
}

// collClass builds the mailbox class. All methods are non-threaded: they
// only move bytes in or out of node-local maps and never block.
func (c *Comm) collClass() *core.Class {
	return &core.Class{
		Name: collClassName,
		New: func() any {
			return &collObj{mail: make(map[string][]byte), dists: make(map[string]DistHooks)}
		},
		Methods: []*core.Method{
			{
				// deliver lands one collective payload in the mailbox.
				Name:    "deliver",
				NewArgs: func() []core.Arg { return []core.Arg{&core.Str{}, &core.Bytes{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*collObj)
					key := args[0].(*core.Str).V
					// Copy: the decoded slice may alias a persistent R-buffer
					// that the next warm invocation overwrites.
					b := args[1].(*core.Bytes).V
					own := make([]byte, len(b))
					copy(own, b)
					o.mail[key] = own
				},
			},
			{
				// dget reads one Dist element at the owner.
				Name:    "dget",
				NewArgs: func() []core.Arg { return []core.Arg{&core.Str{}, &core.I64{}} },
				NewRet:  func() core.Arg { return &core.Bytes{} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*collObj)
					h, ok := o.dists[args[0].(*core.Str).V]
					if !ok {
						panic("coll: dget for unknown dist " + args[0].(*core.Str).V)
					}
					ret.(*core.Bytes).V = h.Get(int(args[1].(*core.I64).V))
				},
			},
			{
				// dput writes one Dist element at the owner.
				Name:    "dput",
				NewArgs: func() []core.Arg { return []core.Arg{&core.Str{}, &core.I64{}, &core.Bytes{}} },
				Fn: func(t *threads.Thread, self any, args []core.Arg, ret core.Arg) {
					o := self.(*collObj)
					h, ok := o.dists[args[0].(*core.Str).V]
					if !ok {
						panic("coll: dput for unknown dist " + args[0].(*core.Str).V)
					}
					h.Put(int(args[1].(*core.I64).V), args[2].(*core.Bytes).V)
				},
			},
		},
	}
}

// send ships one collective payload to a peer node's mailbox as a one-way
// RMI — same wire path, same modelled cost as any application invocation.
func (c *Comm) send(t *threads.Thread, node int, key string, payload []byte) {
	c.rt.CallOneWay(t, c.objs[node], "deliver",
		[]core.Arg{&core.Str{V: key}, &core.Bytes{V: payload}})
}

// take blocks (servicing the network) until the keyed payload has landed in
// the local mailbox, then consumes it.
func (c *Comm) take(t *threads.Thread, key string) []byte {
	o := c.obj(t)
	if _, ok := o.mail[key]; !ok {
		c.rt.WaitLocal(t, func() bool { _, ok := o.mail[key]; return ok })
	}
	b := o.mail[key]
	delete(o.mail, key)
	return b
}

// --- teams -------------------------------------------------------------------

// Team is a communicator over a subset of nodes. Ranks are dense indices
// into the member list; every collective must be called by exactly the
// member threads, in the same order on every member (the usual collective
// contract). The world team exists from setup; subteams come from Split.
type Team struct {
	c      *Comm
	id     string
	nodes  []int       // member node IDs, indexed by rank
	rankOf map[int]int // node ID -> rank
	// seq is the per-rank collective sequence number. Each member's thread
	// touches only its own entry, so the slice needs no locking on the live
	// backend; the entries advance in lockstep because collectives are
	// called in the same order everywhere.
	seq []int64
}

func newTeam(c *Comm, id string, nodes []int) *Team {
	tm := &Team{c: c, id: id, nodes: nodes, rankOf: make(map[int]int, len(nodes)), seq: make([]int64, len(nodes))}
	for r, n := range nodes {
		tm.rankOf[n] = r
	}
	return tm
}

// ID returns the team's machine-wide identifier.
func (tm *Team) ID() string { return tm.id }

// Comm returns the collective engine the team belongs to.
func (tm *Team) Comm() *Comm { return tm.c }

// Size returns the member count.
func (tm *Team) Size() int { return len(tm.nodes) }

// Nodes returns the member node IDs in rank order (do not mutate).
func (tm *Team) Nodes() []int { return tm.nodes }

// Node returns the node ID of the given rank.
func (tm *Team) Node(rank int) int { return tm.nodes[rank] }

// RankOfNode returns the rank of a node ID, or -1 if it is not a member.
func (tm *Team) RankOfNode(node int) int {
	if r, ok := tm.rankOf[node]; ok {
		return r
	}
	return -1
}

// Rank returns the calling thread's rank, or -1 if its node is not a member.
func (tm *Team) Rank(t *threads.Thread) int { return tm.RankOfNode(t.Node().ID) }

// mustRank is Rank for internal callers that require membership.
func (tm *Team) mustRank(t *threads.Thread) int {
	r := tm.Rank(t)
	if r < 0 {
		panic(fmt.Sprintf("coll: node %d is not a member of team %s", t.Node().ID, tm.id))
	}
	return r
}

// next advances and returns rank r's collective sequence number.
func (tm *Team) next(r int) int64 {
	tm.seq[r]++
	return tm.seq[r]
}

// key builds a mailbox key: team, op sequence, phase tag, slot. The phase
// tag separates message kinds inside one operation (reduce-up vs
// broadcast-down of an all-reduce); the slot is the sender's relative rank,
// or the round number for barriers.
func (tm *Team) key(seq int64, phase byte, slot int) string {
	return fmt.Sprintf("%s;%d;%c%d", tm.id, seq, phase, slot)
}

// ceilLog2 returns ceil(log2(n)) for n >= 1.
func ceilLog2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// --- barrier -----------------------------------------------------------------

// Barrier blocks until every team member has entered it: a dissemination
// barrier, ceil(log2 n) rounds, each member sending exactly one message per
// round — against the O(n) central counter the runtime's Barrier object and
// Split-C's barrier() use.
func (tm *Team) Barrier(t *threads.Thread) {
	r := tm.mustRank(t)
	seq := tm.next(r)
	n := len(tm.nodes)
	for k := 0; 1<<k < n; k++ {
		peer := tm.nodes[(r+1<<k)%n]
		tm.c.send(t, peer, tm.key(seq, 'x', k), nil)
		// The round-k message we wait for comes from rank (r - 2^k) mod n.
		tm.c.take(t, tm.key(seq, 'x', k))
	}
}

// --- broadcast ---------------------------------------------------------------

// Bcast distributes root's payload to every member over a binomial tree
// (depth ceil(log2 n)) and returns it on every member. Only root's data
// argument is significant.
func (tm *Team) Bcast(t *threads.Thread, root int, data []byte) []byte {
	r := tm.mustRank(t)
	seq := tm.next(r)
	return tm.bcast(t, r, seq, root, data)
}

// bcast is the reusable broadcast phase (also the down-sweep of AllReduce
// and AllGather, which run it under their own sequence number).
func (tm *Team) bcast(t *threads.Thread, r int, seq int64, root int, data []byte) []byte {
	n := len(tm.nodes)
	rel := (r - root + n) % n
	// Receive from the parent: the first set bit of rel, scanning up, names
	// the round we were reached in.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			data = tm.c.take(t, tm.key(seq, 'b', rel-mask))
			break
		}
		mask <<= 1
	}
	// Forward to children, largest stride first.
	mask >>= 1
	for mask > 0 {
		if rel+mask < n && rel&(mask-1) == 0 && rel&mask == 0 {
			dst := tm.nodes[(rel+mask+root)%n]
			tm.c.send(t, dst, tm.key(seq, 'b', rel), data)
		}
		mask >>= 1
	}
	return data
}

// --- reduce ------------------------------------------------------------------

// Combiner merges two payloads into one. It must be associative and is
// applied in tree order, so non-commutative combiners see an unspecified
// grouping (as in MPI).
type Combiner func(a, b []byte) []byte

// Reduce combines every member's payload with comb along a binomial tree
// rooted at rank root. The combined payload is returned at the root
// (ok=true); other members get their partial (ok=false).
func (tm *Team) Reduce(t *threads.Thread, root int, data []byte, comb Combiner) ([]byte, bool) {
	r := tm.mustRank(t)
	seq := tm.next(r)
	return tm.reduce(t, r, seq, root, data, comb)
}

func (tm *Team) reduce(t *threads.Thread, r int, seq int64, root int, data []byte, comb Combiner) ([]byte, bool) {
	n := len(tm.nodes)
	rel := (r - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				data = comb(data, tm.c.take(t, tm.key(seq, 'r', src)))
			}
		} else {
			parent := tm.nodes[(rel-mask+root)%n]
			tm.c.send(t, parent, tm.key(seq, 'r', rel), data)
			return data, false
		}
	}
	return data, true
}

// AllReduce combines every member's payload and returns the result on every
// member: a binomial reduce to rank 0 followed by a binomial broadcast —
// 2·ceil(log2 n) communication rounds.
func (tm *Team) AllReduce(t *threads.Thread, data []byte, comb Combiner) []byte {
	r := tm.mustRank(t)
	seq := tm.next(r)
	acc, _ := tm.reduce(t, r, seq, 0, data, comb)
	return tm.bcast(t, r, seq, 0, acc)
}

// --- gather / scatter --------------------------------------------------------

// packed payload framing: repeated (rank u64, len u64, bytes) entries.

func packEntries(ranks []int, parts [][]byte) []byte {
	size := 0
	for _, r := range ranks {
		size += 16 + len(parts[r])
	}
	out := make([]byte, 0, size)
	var hdr [8]byte
	for _, r := range ranks {
		binary.LittleEndian.PutUint64(hdr[:], uint64(r))
		out = append(out, hdr[:]...)
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(parts[r])))
		out = append(out, hdr[:]...)
		out = append(out, parts[r]...)
	}
	return out
}

// unpackEntries lands packed entries into parts (indexed by rank).
func unpackEntries(b []byte, parts [][]byte) {
	for len(b) > 0 {
		r := int(binary.LittleEndian.Uint64(b))
		ln := int(binary.LittleEndian.Uint64(b[8:]))
		parts[r] = b[16 : 16+ln]
		b = b[16+ln:]
	}
}

// Gather collects every member's payload at rank root over a binomial tree:
// each subtree's entries travel as one packed message, so the depth is
// ceil(log2 n) rounds. The root (ok=true) gets the full rank-indexed slice;
// other members return nil, false.
func (tm *Team) Gather(t *threads.Thread, root int, data []byte) ([][]byte, bool) {
	r := tm.mustRank(t)
	seq := tm.next(r)
	return tm.gather(t, r, seq, root, data)
}

func (tm *Team) gather(t *threads.Thread, r int, seq int64, root int, data []byte) ([][]byte, bool) {
	n := len(tm.nodes)
	rel := (r - root + n) % n
	parts := make([][]byte, n)
	parts[r] = data
	have := []int{r}
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				unpackEntries(tm.c.take(t, tm.key(seq, 'g', src)), parts)
				for i := range parts {
					if parts[i] != nil && !containsInt(have, i) {
						have = append(have, i)
					}
				}
			}
		} else {
			parent := tm.nodes[(rel-mask+root)%n]
			tm.c.send(t, parent, tm.key(seq, 'g', rel), packEntries(have, parts))
			return nil, false
		}
	}
	return parts, true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// AllGather collects every member's payload on every member: a binomial
// gather to rank 0 followed by a broadcast of the packed vector.
func (tm *Team) AllGather(t *threads.Thread, data []byte) [][]byte {
	r := tm.mustRank(t)
	seq := tm.next(r)
	parts, isRoot := tm.gather(t, r, seq, 0, data)
	n := len(tm.nodes)
	var packed []byte
	if isRoot {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		packed = packEntries(all, parts)
	}
	packed = tm.bcast(t, r, seq, 0, packed)
	if !isRoot {
		parts = make([][]byte, n)
		unpackEntries(packed, parts)
	}
	return parts
}

// Scatter distributes one payload per rank from the root over a binomial
// tree: the root packs each subtree's entries into one message, children
// peel off their own part and forward the rest — ceil(log2 n) rounds, like
// the broadcast but with partitioned data. Only root's parts argument is
// significant; every member returns its own entry.
func (tm *Team) Scatter(t *threads.Thread, root int, parts [][]byte) []byte {
	r := tm.mustRank(t)
	seq := tm.next(r)
	n := len(tm.nodes)
	if r == root && len(parts) != n {
		panic(fmt.Sprintf("coll: Scatter root has %d parts for a %d-member team", len(parts), n))
	}
	rel := (r - root + n) % n
	mine := make([][]byte, n)
	if rel == 0 {
		for i := 0; i < n; i++ {
			mine[i] = parts[i]
		}
	}
	// Receive the packed entries for my subtree from my parent.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			unpackEntries(tm.c.take(t, tm.key(seq, 's', rel-mask)), mine)
			break
		}
		mask <<= 1
	}
	// Forward each child its subtree's entries: child rel+m owns relative
	// ranks [rel+m, rel+2m).
	mask >>= 1
	for mask > 0 {
		if rel+mask < n && rel&(mask-1) == 0 && rel&mask == 0 {
			var ranks []int
			for d := rel + mask; d < rel+2*mask && d < n; d++ {
				ranks = append(ranks, (d+root)%n)
			}
			dst := tm.nodes[(rel+mask+root)%n]
			tm.c.send(t, dst, tm.key(seq, 's', rel), packEntries(ranks, mine))
		}
		mask >>= 1
	}
	return mine[r]
}

// --- split -------------------------------------------------------------------

// Split partitions the team into subteams by color (MPI_Comm_split): every
// member calls it with its color and key; members of the same color form a
// new team, ranked by (key, parent rank). A negative color opts out — the
// member still participates in the exchange but gets a nil team. The member
// lists are computed from an AllGather of (color, key), so every member of
// a subteam derives the identical team deterministically.
func (tm *Team) Split(t *threads.Thread, color, key int) *Team {
	r := tm.mustRank(t)
	seq := tm.seq[r] + 1 // the AllGather below consumes this sequence number
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(color)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(key)))
	all := tm.AllGather(t, buf[:])
	if color < 0 {
		return nil
	}
	type member struct{ key, rank int }
	var ms []member
	for rank, b := range all {
		c := int(int64(binary.LittleEndian.Uint64(b)))
		k := int(int64(binary.LittleEndian.Uint64(b[8:])))
		if c == color {
			ms = append(ms, member{key: k, rank: rank})
		}
	}
	// Sort by (key, parent rank) — insertion sort; teams are small.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && (ms[j].key < ms[j-1].key ||
			(ms[j].key == ms[j-1].key && ms[j].rank < ms[j-1].rank)); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	nodes := make([]int, len(ms))
	for i, m := range ms {
		nodes[i] = tm.nodes[m.rank]
	}
	id := fmt.Sprintf("%s/%d.%d", tm.id, seq, color)
	return newTeam(tm.c, id, nodes)
}

// --- Dist plumbing -----------------------------------------------------------

// InstallDist hooks a Dist array's owner-side accessors into a node's
// mailbox object. Setup-time only: it mutates the node's object table from
// the caller's context, which is safe only before Run.
func (c *Comm) InstallDist(node int, id string, h DistHooks) {
	if c.rt.Started() {
		panic("coll: InstallDist after Run started (Dist arrays are created at setup time)")
	}
	o := c.rt.Object(c.objs[node]).(*collObj)
	if _, dup := o.dists[id]; dup {
		panic("coll: dist installed twice: " + id)
	}
	o.dists[id] = h
}

// NextDistID allocates a machine-wide Dist identifier.
func (c *Comm) NextDistID() string {
	c.dists++
	return fmt.Sprintf("dist%d", c.dists)
}

// DistGet reads the element at owner-local offset off of the array's part
// on node (a synchronous RMI; local reads short-circuit in the core).
func (c *Comm) DistGet(t *threads.Thread, node int, id string, off int) []byte {
	var ret core.Bytes
	c.rt.Call(t, c.objs[node], "dget", []core.Arg{&core.Str{V: id}, &core.I64{V: int64(off)}}, &ret)
	return ret.V
}

// DistPut writes b into the element at owner-local offset off on node,
// returning once the owner has applied it.
func (c *Comm) DistPut(t *threads.Thread, node int, id string, off int, b []byte) {
	c.rt.Call(t, c.objs[node], "dput",
		[]core.Arg{&core.Str{V: id}, &core.I64{V: int64(off)}, &core.Bytes{V: b}}, nil)
}

// DistGetAsync starts a split-phase read; the returned Bytes holds the
// encoded element once the future completes.
func (c *Comm) DistGetAsync(t *threads.Thread, node int, id string, off int) (*core.Future, *core.Bytes) {
	ret := &core.Bytes{}
	f := c.rt.CallAsync(t, c.objs[node], "dget", []core.Arg{&core.Str{V: id}, &core.I64{V: int64(off)}}, ret)
	return f, ret
}

// DistPutAsync starts a split-phase write; the future completes when the
// owner's acknowledgement lands.
func (c *Comm) DistPutAsync(t *threads.Thread, node int, id string, off int, b []byte) *core.Future {
	return c.rt.CallAsync(t, c.objs[node], "dput",
		[]core.Arg{&core.Str{V: id}, &core.I64{V: int64(off)}, &core.Bytes{V: b}}, nil)
}

// LocalDeref counts one local Dist access on the calling node (the same
// counter compiled Split-C bumps for local global-pointer dereferences).
func LocalDeref(t *threads.Thread) { t.Node().Acct.Count(machine.CntLocalDeref, 1) }

// --- float64 payload helpers -------------------------------------------------

// EncF64 encodes a float64 as a collective payload; DecF64 reverses it and
// SumF64 is the matching byte-level addition combiner. Conveniences for
// byte-level users of Team (the typed mpmd surface has its own codecs).
func EncF64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// DecF64 decodes an EncF64 payload.
func DecF64(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// SumF64 combines two EncF64 payloads by addition.
func SumF64(a, b []byte) []byte { return EncF64(DecF64(a) + DecF64(b)) }
