package coll

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/transport/live"
)

// runTeam runs prog as every member of the world team over a fresh n-node
// machine and returns machine + runtime for inspection.
func runTeam(t *testing.T, n int, liveBE bool, prog func(tm *Team, th *threads.Thread, me int)) (*machine.Machine, *core.Runtime) {
	t.Helper()
	var m *machine.Machine
	if liveBE {
		m = machine.NewWithBackend(machine.SP1997(), n, live.New(n, live.Options{Watchdog: 30 * time.Second}))
	} else {
		m = machine.New(machine.SP1997(), n)
	}
	rt := core.NewRuntime(m)
	tm := For(rt).World()
	for i := 0; i < n; i++ {
		i := i
		rt.OnNode(i, func(th *threads.Thread) { prog(tm, th, i) })
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m, rt
}

func backends(t *testing.T, fn func(t *testing.T, liveBE bool)) {
	t.Run("sim", func(t *testing.T) { fn(t, false) })
	t.Run("live", func(t *testing.T) { fn(t, true) })
}

func TestBarrierOrdering(t *testing.T) {
	backends(t, func(t *testing.T, liveBE bool) {
		// Each member bumps a shared per-round counter after the barrier; a
		// member racing ahead of the barrier would observe a short count.
		const n, rounds = 5, 4
		counts := make([]atomic.Int32, rounds)
		bad := make(chan string, n*rounds)
		runTeam(t, n, liveBE, func(tm *Team, th *threads.Thread, me int) {
			for r := 0; r < rounds; r++ {
				tm.Barrier(th)
				// After barrier k, every member must have finished round k-1.
				if r > 0 && counts[r-1].Load() != n {
					bad <- fmt.Sprintf("member %d entered round %d with %d/%d arrivals", me, r, counts[r-1].Load(), n)
				}
				tm.Barrier(th)
				counts[r].Add(1)
			}
		})
		close(bad)
		for msg := range bad {
			t.Error(msg)
		}
		for r := range counts {
			if c := counts[r].Load(); c != n {
				t.Errorf("round %d: %d/%d members counted", r, c, n)
			}
		}
	})
}

func TestBcast(t *testing.T) {
	backends(t, func(t *testing.T, liveBE bool) {
		for _, n := range []int{1, 2, 3, 5, 8} {
			got := make([]float64, n)
			runTeam(t, n, liveBE, func(tm *Team, th *threads.Thread, me int) {
				root := n - 1
				var data []byte
				if me == root {
					data = EncF64(42.5)
				}
				got[me] = DecF64(tm.Bcast(th, root, data))
			})
			for me, v := range got {
				if v != 42.5 {
					t.Errorf("n=%d member %d got %v, want 42.5", n, me, v)
				}
			}
		}
	})
}

func TestReduceAndAllReduce(t *testing.T) {
	backends(t, func(t *testing.T, liveBE bool) {
		for _, n := range []int{1, 2, 3, 6, 7} {
			rootGot := math.NaN()
			all := make([]float64, n)
			runTeam(t, n, liveBE, func(tm *Team, th *threads.Thread, me int) {
				v := EncF64(float64(me + 1))
				if res, isRoot := tm.Reduce(th, 2%n, v, SumF64); isRoot {
					rootGot = DecF64(res)
				}
				all[me] = DecF64(tm.AllReduce(th, EncF64(float64(me+1)), SumF64))
			})
			want := float64(n*(n+1)) / 2
			if rootGot != want {
				t.Errorf("n=%d: Reduce root got %v, want %v", n, rootGot, want)
			}
			for me, v := range all {
				if v != want {
					t.Errorf("n=%d member %d: AllReduce got %v, want %v", n, me, v, want)
				}
			}
		}
	})
}

func TestGatherScatterAllGather(t *testing.T) {
	backends(t, func(t *testing.T, liveBE bool) {
		for _, n := range []int{1, 2, 3, 5, 6} {
			root := n / 2
			var gathered []float64
			scattered := make([]float64, n)
			allG := make([][]float64, n)
			runTeam(t, n, liveBE, func(tm *Team, th *threads.Thread, me int) {
				if parts, isRoot := tm.Gather(th, root, EncF64(float64(10+me))); isRoot {
					gathered = make([]float64, n)
					for r, b := range parts {
						gathered[r] = DecF64(b)
					}
				}
				var parts [][]byte
				if me == root {
					parts = make([][]byte, n)
					for r := range parts {
						parts[r] = EncF64(float64(100 + r))
					}
				}
				scattered[me] = DecF64(tm.Scatter(th, root, parts))
				ag := tm.AllGather(th, EncF64(float64(1000+me)))
				allG[me] = make([]float64, n)
				for r, b := range ag {
					allG[me][r] = DecF64(b)
				}
			})
			for r := 0; r < n; r++ {
				if gathered[r] != float64(10+r) {
					t.Errorf("n=%d: gathered[%d]=%v, want %v", n, r, gathered[r], float64(10+r))
				}
				if scattered[r] != float64(100+r) {
					t.Errorf("n=%d: scattered[%d]=%v, want %v", n, r, scattered[r], float64(100+r))
				}
				for me := 0; me < n; me++ {
					if allG[me][r] != float64(1000+r) {
						t.Errorf("n=%d member %d: allgather[%d]=%v, want %v", n, me, r, allG[me][r], float64(1000+r))
					}
				}
			}
		}
	})
}

func TestSplitSubteams(t *testing.T) {
	backends(t, func(t *testing.T, liveBE bool) {
		// 6 nodes split into even/odd colors; keys reverse the even team's
		// rank order. Subteam collectives must not interfere with each other
		// or with the parent team.
		const n = 6
		sums := make([]float64, n)
		sizes := make([]int, n)
		ranks := make([]int, n)
		worldAfter := make([]float64, n)
		runTeam(t, n, liveBE, func(tm *Team, th *threads.Thread, me int) {
			sub := tm.Split(th, me%2, -me) // negative keys reverse rank order
			sizes[me] = sub.Size()
			ranks[me] = sub.Rank(th)
			sums[me] = DecF64(sub.AllReduce(th, EncF64(float64(me)), SumF64))
			tm.Barrier(th)
			worldAfter[me] = DecF64(tm.AllReduce(th, EncF64(1), SumF64))
		})
		for me := 0; me < n; me++ {
			if sizes[me] != 3 {
				t.Errorf("member %d: subteam size %d, want 3", me, sizes[me])
			}
			want := 0.0 + 2 + 4
			if me%2 == 1 {
				want = 1 + 3 + 5
			}
			if sums[me] != want {
				t.Errorf("member %d: subteam sum %v, want %v", me, sums[me], want)
			}
			// Keys -me sort descending by node, so rank 0 is the largest node.
			wantRank := (n - 1 - me) / 2
			if ranks[me] != wantRank {
				t.Errorf("member %d: subteam rank %d, want %d", me, ranks[me], wantRank)
			}
			if worldAfter[me] != n {
				t.Errorf("member %d: world AllReduce after split %v, want %v", me, worldAfter[me], float64(n))
			}
		}
	})
}

func TestSplitOptOut(t *testing.T) {
	const n = 4
	gotNil := make([]bool, n)
	sums := make([]float64, n)
	runTeam(t, n, false, func(tm *Team, th *threads.Thread, me int) {
		color := 0
		if me == 3 {
			color = -1 // opts out, but still participates in the exchange
		}
		sub := tm.Split(th, color, me)
		if sub == nil {
			gotNil[me] = true
			return
		}
		sums[me] = DecF64(sub.AllReduce(th, EncF64(float64(me+1)), SumF64))
	})
	if !gotNil[3] {
		t.Error("member 3 (color<0) did not get a nil subteam")
	}
	for me := 0; me < 3; me++ {
		if gotNil[me] || sums[me] != 6 {
			t.Errorf("member %d: nil=%v sum=%v, want 1+2+3=6", me, gotNil[me], sums[me])
		}
	}
}
