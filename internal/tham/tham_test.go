package tham

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashNameDeterministic(t *testing.T) {
	if HashName("Foo::bar") != HashName("Foo::bar") {
		t.Fatal("hash not deterministic")
	}
	if HashName("Foo::bar") == HashName("Foo::baz") {
		t.Fatal("distinct names collided (unlucky but investigate)")
	}
}

func TestRegistryRegisterResolve(t *testing.T) {
	r := NewRegistry()
	id1 := r.Register("A::m1")
	id2 := r.Register("A::m2")
	if id1 == id2 {
		t.Fatal("distinct methods share a stub")
	}
	if again := r.Register("A::m1"); again != id1 {
		t.Fatal("re-registration changed the stub id")
	}
	got, ok := r.Resolve(HashName("A::m2"))
	if !ok || got != id2 {
		t.Fatalf("resolve = %v %v", got, ok)
	}
	if _, ok := r.Resolve(HashName("A::unknown")); ok {
		t.Fatal("resolved unregistered method")
	}
	if r.Name(id1) != "A::m1" || r.Len() != 2 {
		t.Fatal("registry bookkeeping wrong")
	}
}

// Property: registration order fixes stub IDs densely from zero.
func TestRegistryDenseIDs(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRegistry()
		for i := 0; i < int(n); i++ {
			if r.Register(fmt.Sprintf("C::m%d", i)) != StubID(i) {
				return false
			}
		}
		return r.Len() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStubCacheLookupUpdateInvalidate(t *testing.T) {
	c := NewStubCache()
	h := HashName("A::m")
	if _, ok := c.Lookup(2, h); ok {
		t.Fatal("hit on empty cache")
	}
	rb := &RBuf{Node: 2, ID: 5, Data: make([]byte, 64)}
	c.Update(2, h, &CacheEntry{Stub: 7, RBufID: rb.ID})
	e, ok := c.Lookup(2, h)
	if !ok || e.Stub != 7 || e.RBufID != 5 {
		t.Fatalf("lookup after update: %+v %v", e, ok)
	}
	// Same method, different processor: separate entry.
	if _, ok := c.Lookup(3, h); ok {
		t.Fatal("cache confused processors")
	}
	c.Invalidate(2, h)
	if _, ok := c.Lookup(2, h); ok {
		t.Fatal("entry survived invalidation")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats %d/%d, want 1/3", hits, misses)
	}
}

func TestBufMgrAllocReuse(t *testing.T) {
	b := NewBufMgr(0)
	if len(b.StaticArea()) != StaticAreaSize {
		t.Fatalf("static area %d", len(b.StaticArea()))
	}
	rb := b.AllocRBuf(100)
	if len(rb.Data) < 100 {
		t.Fatalf("rbuf too small: %d", len(rb.Data))
	}
	b.Reuse(rb, 50)
	b.Reuse(rb, 4096) // grows
	if cap(rb.Data) < 4096 {
		t.Fatalf("rbuf did not grow: %d", cap(rb.Data))
	}
	allocs, reuses := b.Stats()
	if allocs != 1 || reuses != 2 {
		t.Fatalf("stats %d/%d", allocs, reuses)
	}
}

func TestObjTable(t *testing.T) {
	var o ObjTable
	a := &struct{ x int }{1}
	b := &struct{ x int }{2}
	ia, ib := o.Add(a), o.Add(b)
	if ia == ib || o.Len() != 2 {
		t.Fatal("ids not distinct")
	}
	if o.Get(ia) != any(a) || o.Get(ib) != any(b) {
		t.Fatal("lookup returned wrong object")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad id did not panic")
		}
	}()
	o.Get(99)
}
