// Package tham is the small support library the paper writes alongside its
// new CC++ runtime ("ThAM"): processor-object startup, method-name mapping
// with a per-node stub cache, and persistent send/receive buffer management.
//
// The three mechanisms correspond to the paper's named optimizations:
//
//   - Method stub caching (§4): each node keeps a table indexed by
//     (processor number, method-name hash). A valid entry yields the remote
//     stub's entry-point "address" (here: stub ID) so it can be shipped in
//     the message; an invalid entry forces the whole method name onto the
//     wire and a resolution reply updates the cache.
//   - Persistent buffers (§4): receive buffers for recently invoked methods
//     stay allocated and are managed by the sender, eliminating the staging
//     copy out of the per-node static buffer area on warm invocations.
//   - Processor-object startup: object tables mapping small object IDs to
//     live objects, per node.
package tham

import (
	"fmt"
	"hash/fnv"
)

// NameHash is the 32-bit hash of a method name used as the wire/key form of
// method identity across separately compiled program images.
type NameHash uint32

// HashName hashes a fully qualified method name ("Class::method").
func HashName(name string) NameHash {
	h := fnv.New32a()
	// Writing to an fnv hash cannot fail.
	_, _ = h.Write([]byte(name))
	return NameHash(h.Sum32())
}

// StubID is a resolved entry-point index into a node's registry — the
// simulator's stand-in for a remote stub's entry-point address.
type StubID int32

// InvalidStub marks an unresolved cache entry.
const InvalidStub StubID = -1

// Registry is a node's local method registry: stubs registered during
// runtime initialization, looked up by name hash when a resolution request
// arrives from a node with a cold cache.
type Registry struct {
	byHash map[NameHash]StubID
	names  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byHash: make(map[NameHash]StubID)}
}

// Register adds a local stub for the named method and returns its StubID.
// Registering the same name twice returns the existing ID (idempotent, as
// multiple processor objects of one class share stubs). Distinct names that
// collide in the 32-bit hash space panic: the paper's runtime assumes
// collision-free hashes within one application, and we surface a violation
// rather than silently misdispatch.
func (r *Registry) Register(name string) StubID {
	h := HashName(name)
	if id, ok := r.byHash[h]; ok {
		if r.names[id] != name {
			panic(fmt.Sprintf("tham: method name hash collision: %q vs %q", name, r.names[id]))
		}
		return id
	}
	id := StubID(len(r.names))
	r.names = append(r.names, name)
	r.byHash[h] = id
	return id
}

// Resolve looks up a stub by name hash, as the resolution handler does.
func (r *Registry) Resolve(h NameHash) (StubID, bool) {
	id, ok := r.byHash[h]
	return id, ok
}

// Name returns the registered name of a stub.
func (r *Registry) Name(id StubID) string { return r.names[id] }

// Len reports the number of registered stubs.
func (r *Registry) Len() int { return len(r.names) }

// stubKey indexes the cache by processor number and method-name hash,
// exactly as §4 describes.
type stubKey struct {
	proc int
	hash NameHash
}

// CacheEntry is one slot of the stub cache. RBufID names the sender-managed
// persistent receive buffer attached to the remote method once resolved — an
// ID into the *remote* node's buffer table, the stand-in for the raw buffer
// address a real sender would ship in the message words. Holding an ID
// rather than a pointer keeps the cache meaningful across address spaces
// (the sharded netlive backend): only the owning node ever dereferences it.
type CacheEntry struct {
	Stub   StubID
	RBufID int32
}

// StubCache is a node's table of remote stub addresses.
type StubCache struct {
	entries map[stubKey]*CacheEntry
	hits    int64
	misses  int64
}

// NewStubCache returns an empty cache.
func NewStubCache() *StubCache {
	return &StubCache{entries: make(map[stubKey]*CacheEntry)}
}

// Lookup returns the cache entry for (proc, hash) if it is valid.
func (c *StubCache) Lookup(proc int, hash NameHash) (*CacheEntry, bool) {
	e, ok := c.entries[stubKey{proc, hash}]
	if ok {
		c.hits++
		return e, true
	}
	c.misses++
	return nil, false
}

// Update installs or overwrites the entry for (proc, hash) after a
// resolution reply.
func (c *StubCache) Update(proc int, hash NameHash, e *CacheEntry) {
	c.entries[stubKey{proc, hash}] = e
}

// Invalidate removes the entry (used by ablation studies and by tests).
func (c *StubCache) Invalidate(proc int, hash NameHash) {
	delete(c.entries, stubKey{proc, hash})
}

// Stats reports lookup hits and misses since creation.
func (c *StubCache) Stats() (hits, misses int64) { return c.hits, c.misses }

// RBuf is a persistent receive buffer attached to one (sender, method) pair
// on the receiving node. Data is the landing area for marshalled arguments;
// InUse guards against a second invocation arriving while a threaded method
// is still consuming the previous contents (the sender manages the buffer,
// so the runtime serializes on it).
type RBuf struct {
	Node  int
	ID    int32 // index in the owning node's BufMgr table (the wire name)
	Data  []byte
	InUse bool
}

// BufMgr manages a node's buffer pool: a static landing area for cold
// invocations and the set of persistent R-buffers handed out to senders.
type BufMgr struct {
	node       int
	staticArea []byte
	rbufs      []*RBuf
	allocs     int64
	reuses     int64
}

// StaticAreaSize is the per-node landing area for cold invocations, matching
// the "per-node static buffer area" of §4.
const StaticAreaSize = 64 * 1024

// NewBufMgr creates the buffer manager for a node.
func NewBufMgr(node int) *BufMgr {
	return &BufMgr{node: node, staticArea: make([]byte, StaticAreaSize)}
}

// StaticArea returns the cold-path landing area.
func (b *BufMgr) StaticArea() []byte { return b.staticArea }

// AllocRBuf allocates a persistent receive buffer of at least n bytes for a
// newly resolved method and records the allocation.
//
//mpmd:coldpath first-invocation path: the persistent R-buffer is allocated once per method
func (b *BufMgr) AllocRBuf(n int) *RBuf {
	if n < 256 {
		n = 256
	}
	rb := &RBuf{Node: b.node, ID: int32(len(b.rbufs)), Data: make([]byte, n)}
	b.rbufs = append(b.rbufs, rb)
	b.allocs++
	return rb
}

// RBuf returns the persistent buffer with the given ID — the destination-side
// resolution of a buffer name received in a message's word arguments.
func (b *BufMgr) RBuf(id int32) *RBuf {
	if id < 0 || int(id) >= len(b.rbufs) {
		panic(fmt.Sprintf("tham: node %d has no R-buffer %d (have %d)", b.node, id, len(b.rbufs)))
	}
	return b.rbufs[id]
}

// Reuse records a warm invocation landing directly in a persistent buffer,
// growing it if the arguments outgrew the original allocation.
//
//mpmd:coldpath reallocates only when arguments outgrow the persistent buffer
func (b *BufMgr) Reuse(rb *RBuf, n int) {
	if cap(rb.Data) < n {
		rb.Data = make([]byte, n)
	}
	rb.Data = rb.Data[:cap(rb.Data)]
	b.reuses++
}

// Stats reports persistent-buffer allocations and reuses.
func (b *BufMgr) Stats() (allocs, reuses int64) { return b.allocs, b.reuses }

// ObjTable maps small object IDs to live processor objects on one node.
type ObjTable struct {
	objs []any
}

// Add registers an object and returns its ID.
func (o *ObjTable) Add(obj any) int32 {
	o.objs = append(o.objs, obj)
	return int32(len(o.objs) - 1)
}

// Get returns the object with the given ID.
func (o *ObjTable) Get(id int32) any {
	if id < 0 || int(id) >= len(o.objs) {
		panic(fmt.Sprintf("tham: bad object id %d (node has %d objects)", id, len(o.objs)))
	}
	return o.objs[id]
}

// Len reports the number of registered objects.
func (o *ObjTable) Len() int { return len(o.objs) }
