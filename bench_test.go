// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (§6). One testing.B benchmark per experiment:
//
//	BenchmarkTable1CodeSize      — Table 1 (source-code size)
//	BenchmarkTable4Micro         — Table 4 (communication micro-benchmarks)
//	BenchmarkFig5EM3D/*          — Figure 5 (EM3D, 3 variants × 4 remote %)
//	BenchmarkFig6Water/*         — Figure 6 (Water, 2 variants × 2 sizes)
//	BenchmarkFig6LU              — Figure 6 (Blocked LU)
//	BenchmarkNexusCompare        — §6 CC++/ThAM vs CC++/Nexus
//	BenchmarkAblation/*          — §4 design-choice ablations
//
// Each benchmark reports the paper-relevant quantity as custom metrics
// (virtual microseconds and CC++/Split-C ratios); wall-clock ns/op only
// measures the simulator. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-size experiment output (paper-scale parameters) comes from
// cmd/mpmdbench; these benchmarks use the quick scale so the suite stays
// fast while exercising identical code paths.
package repro_test

import (
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/apps/lu"
	"repro/internal/apps/water"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/nexus"
)

func BenchmarkTable1CodeSize(b *testing.B) {
	var rows []bench.CodeSizeRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunCodeSize()
	}
	total := 0
	for _, r := range rows {
		total += r.GoLines
	}
	b.ReportMetric(float64(total), "impl-lines")
}

func BenchmarkTable4Micro(b *testing.B) {
	sc := bench.Quick()
	var rows []bench.MicroRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunMicro(bench.Cfg(), sc)
	}
	for _, r := range rows {
		switch r.Name {
		case "0-Word Simple":
			b.ReportMetric(float64(r.CCTotal.Nanoseconds())/1000, "simple-µs")
		case "0-Word Threaded":
			b.ReportMetric(float64(r.CCTotal.Nanoseconds())/1000, "threaded-µs")
		case "BulkRead 40-Word":
			b.ReportMetric(float64(r.CCTotal.Nanoseconds())/1000, "bulkread-µs")
		}
	}
}

func BenchmarkTable4MPLReference(b *testing.B) {
	var rtt float64
	for i := 0; i < b.N; i++ {
		rtt = float64(bench.MPLReferenceRTT(bench.Cfg(), 100).Nanoseconds()) / 1000
	}
	b.ReportMetric(rtt, "rtt-µs")
}

func benchEM3D(b *testing.B, variant em3d.Variant, remotePct int) {
	sc := bench.Quick()
	p := em3d.Params{
		GraphNodes: sc.EM3DNodes, Degree: sc.EM3DDegree, Procs: 4,
		RemotePct: remotePct, Iters: sc.EM3DIters, Seed: 1,
	}
	base := em3d.Build(p)
	var ratio float64
	for i := 0; i < b.N; i++ {
		scRes, err := em3d.RunSplitC(bench.Cfg(), base.Clone(), variant)
		if err != nil {
			b.Fatal(err)
		}
		ccRes, err := em3d.RunCCXX(bench.Cfg(), base.Clone(), variant, nil)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ccRes.Ratio(scRes)
	}
	b.ReportMetric(ratio, "cc/sc-ratio")
}

func BenchmarkFig5EM3D(b *testing.B) {
	for _, variant := range em3d.Variants() {
		for _, pct := range bench.RemotePcts {
			variant, pct := variant, pct
			b.Run(string(variant)+"/remote"+itoa(pct), func(b *testing.B) {
				benchEM3D(b, variant, pct)
			})
		}
	}
}

func benchWater(b *testing.B, variant water.Variant, n int) {
	sc := bench.Quick()
	p := water.Params{N: n, Procs: 4, Steps: sc.WaterSteps, Seed: 3}
	base := water.Build(p)
	var ratio float64
	for i := 0; i < b.N; i++ {
		scRes, err := water.RunSplitC(bench.Cfg(), base.Clone(), variant)
		if err != nil {
			b.Fatal(err)
		}
		ccRes, err := water.RunCCXX(bench.Cfg(), base.Clone(), variant, nil)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ccRes.Ratio(scRes)
	}
	b.ReportMetric(ratio, "cc/sc-ratio")
}

func BenchmarkFig6Water(b *testing.B) {
	for _, variant := range water.Variants() {
		for _, n := range bench.Quick().WaterSizes {
			variant, n := variant, n
			b.Run(string(variant)+"/n"+itoa(n), func(b *testing.B) {
				benchWater(b, variant, n)
			})
		}
	}
}

func BenchmarkFig6LU(b *testing.B) {
	sc := bench.Quick()
	p := lu.Params{N: sc.LUN, B: sc.LUB, Procs: 4, Seed: 5}
	base := lu.Build(p)
	var ratio float64
	for i := 0; i < b.N; i++ {
		scRes, err := lu.RunSplitC(bench.Cfg(), base.Clone())
		if err != nil {
			b.Fatal(err)
		}
		ccRes, err := lu.RunCCXX(bench.Cfg(), base.Clone(), nil)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ccRes.Ratio(scRes)
	}
	b.ReportMetric(ratio, "cc/sc-ratio")
}

func BenchmarkNexusCompare(b *testing.B) {
	sc := bench.Quick()
	p := em3d.Params{GraphNodes: sc.EM3DNodes / 2, Degree: sc.EM3DDegree, Procs: 4,
		RemotePct: 100, Iters: 2, Seed: 1}
	base := em3d.Build(p)
	var speedup float64
	for i := 0; i < b.N; i++ {
		th, err := em3d.RunCCXX(bench.Cfg(), base.Clone(), em3d.Ghost, nil)
		if err != nil {
			b.Fatal(err)
		}
		nx, err := em3d.RunCCXX(bench.Cfg(), base.Clone(), em3d.Ghost,
			func(m *machine.Machine) core.Options {
				return core.Options{Transport: nexus.New(m)}
			})
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(nx.Elapsed) / float64(th.Elapsed)
	}
	b.ReportMetric(speedup, "tham-speedup")
}

func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"tuned", core.Options{}},
		{"noStubCache", core.Options{DisableStubCache: true}},
		{"noPersistentBufs", core.Options{DisablePersistentBuffers: true}},
		{"spinSenders", core.Options{SpinSenders: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var rows []bench.AblationRow
			for i := 0; i < b.N; i++ {
				rows = bench.RunAblations(bench.Cfg(), bench.Quick())
			}
			for _, r := range rows {
				if (c.name == "tuned" && r.Config == "tuned (paper §4)") ||
					(c.name == "noStubCache" && r.Config == "no stub cache") ||
					(c.name == "noPersistentBufs" && r.Config == "no persistent bufs") ||
					(c.name == "spinSenders" && r.Config == "spin senders") {
					b.ReportMetric(float64(r.NullRMI.Nanoseconds())/1000, "nullRMI-µs")
				}
			}
		})
	}
}

func BenchmarkIrregularTaskFarm(b *testing.B) {
	var rows []bench.IrregularRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunIrregular(bench.Cfg(), bench.Quick())
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Speedup, "mpmd-speedup@skew0.9")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
